//! Dockless bike-sharing demand — the bike-counter substitution
//! (paper Section VII-F2).
//!
//! The paper derives docking demand from real bike-counter data: an hourly
//! flow field `g` over streets, its divergence `∇·g` at each node ("the
//! number of bikes that get parked at that node during an hour"), and the
//! *variance* of that divergence across the day as the demand proxy, which
//! is normalized into a distribution from which 1000 bikes are placed.
//!
//! We reproduce the entire pipeline on a *synthetic* flow field with the
//! commuting structure that makes divergence informative: morning flow
//! toward the city center, evening flow outward, plus noise. The field
//! lives on directed arcs (flow sign relative to the arc direction, as the
//! paper's Figure 15 encodes); divergence and variance are computed exactly
//! as defined.

use mcfs_graph::{dijkstra_all, Graph, NodeId, INF};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashMap;

use crate::customers::uniform_customers;
use crate::sample_normal;

/// Hours in the modeled day.
pub const HOURS: usize = 24;

/// A synthetic hourly bike-flow field over the network's undirected edges.
#[derive(Clone, Debug)]
pub struct FlowField {
    /// Canonical edge list `(u, v)` with `u < v`.
    pub edges: Vec<(NodeId, NodeId)>,
    /// `flows[h][e]` = signed flow on edge `e` during hour `h`; positive
    /// means `u → v`.
    pub flows: Vec<Vec<f64>>,
    /// Per-edge alignment with "toward the center": `+1` when `u → v` heads
    /// to the center, `−1` when `v → u` does, `0` for perpendicular edges.
    pub orientation: Vec<f64>,
    /// The commuting focal node (the "city center").
    pub center: NodeId,
}

/// Diurnal commuting intensity: positive toward the center in the morning
/// peak, negative (outbound) in the evening peak.
fn diurnal(hour: usize) -> f64 {
    let h = hour as f64;
    let morning = (-((h - 8.0) * (h - 8.0)) / 4.5).exp();
    let evening = (-((h - 17.0) * (h - 17.0)) / 4.5).exp();
    morning - evening
}

/// Build the synthetic flow field. The flow on an edge is the diurnal
/// intensity times the edge's alignment with "toward the center" (computed
/// from network distances), scaled by traffic volume noise.
pub fn generate_flow_field(g: &Graph, seed: u64) -> FlowField {
    let mut rng = StdRng::seed_from_u64(seed);
    // Center: the node that minimizes eccentricity among a random probe set
    // would be ideal; the cheap version picks the node with the smallest sum
    // of distances to a probe sample.
    let probes = uniform_customers(g, g.num_nodes().min(16), rng.random());
    let mut best: Option<(u64, NodeId)> = None;
    for &p in &probes {
        let d = dijkstra_all(g, p);
        let sum: u64 = d.iter().map(|&x| if x == INF { 0 } else { x }).sum();
        if best.is_none_or(|(bs, _)| sum < bs) {
            best = Some((sum, p));
        }
    }
    let center = best.map(|(_, c)| c).unwrap_or(0);
    let to_center = dijkstra_all(g, center);

    // Canonical undirected edge list.
    let mut edges = Vec::new();
    for u in g.nodes() {
        for (v, _) in g.neighbors(u) {
            if u < v {
                edges.push((u, v));
            }
        }
    }

    // Per-edge traffic volume (log-normal: arterials vs side streets) and
    // orientation toward the center.
    let volumes: Vec<f64> = edges
        .iter()
        .map(|_| (0.8 * sample_normal(&mut rng)).exp())
        .collect();
    let orientation: Vec<f64> = edges
        .iter()
        .map(|&(u, v)| {
            let (du, dv) = (to_center[u as usize], to_center[v as usize]);
            if du == INF || dv == INF {
                0.0
            } else if dv < du {
                1.0 // u → v heads toward the center
            } else if du < dv {
                -1.0
            } else {
                0.0
            }
        })
        .collect();

    let flows = (0..HOURS)
        .map(|h| {
            let a = diurnal(h);
            edges
                .iter()
                .enumerate()
                .map(|(e, _)| {
                    let noise = 0.15 * sample_normal(&mut rng);
                    volumes[e] * (a * orientation[e] + noise)
                })
                .collect()
        })
        .collect();

    FlowField {
        edges,
        flows,
        orientation,
        center,
    }
}

/// Divergence `∇·g` per node per hour: bikes parked at the node in that
/// hour. For edge `(u, v)` with flow `f > 0` (meaning `u → v`), `f` leaves
/// `u` and arrives at `v`.
pub fn divergence(g: &Graph, field: &FlowField) -> Vec<Vec<f64>> {
    let n = g.num_nodes();
    field
        .flows
        .iter()
        .map(|hour_flows| {
            let mut div = vec![0.0f64; n];
            for (e, &(u, v)) in field.edges.iter().enumerate() {
                let f = hour_flows[e];
                div[u as usize] -= f;
                div[v as usize] += f;
            }
            div
        })
        .collect()
}

/// The paper's docking-demand proxy: per-node variance of the divergence
/// across the day, normalized to a probability distribution.
pub fn docking_demand(g: &Graph, field: &FlowField) -> Vec<f64> {
    let div = divergence(g, field);
    let n = g.num_nodes();
    let mut variance = vec![0.0f64; n];
    for v in 0..n {
        let mean: f64 = div.iter().map(|h| h[v]).sum::<f64>() / HOURS as f64;
        variance[v] = div
            .iter()
            .map(|h| (h[v] - mean) * (h[v] - mean))
            .sum::<f64>()
            / HOURS as f64;
    }
    let total: f64 = variance.iter().sum();
    if total > 0.0 {
        for x in &mut variance {
            *x /= total;
        }
    }
    variance
}

/// A bike docking station with a capacity.
#[derive(Clone, Copy, Debug)]
pub struct Station {
    /// Node the station occupies.
    pub node: NodeId,
    /// Bike slots (small-integer capacities like real racks).
    pub capacity: u32,
}

/// Generate `count` docking stations on distinct nodes with rack capacities
/// ≈ N(12, 5²) clamped to `2..=40` (the Copenhagen portal's station sizes).
pub fn generate_stations(g: &Graph, count: usize, seed: u64) -> Vec<Station> {
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes = uniform_customers(g, count, rng.random());
    nodes
        .into_iter()
        .map(|node| {
            let capacity = (12.0 + 5.0 * sample_normal(&mut rng))
                .round()
                .clamp(2.0, 40.0) as u32;
            Station { node, capacity }
        })
        .collect()
}

/// Summary statistics of a flow field (printed by the Figure 15 analogue).
#[derive(Clone, Debug)]
pub struct FlowSummary {
    /// Total |flow| per hour.
    pub hourly_magnitude: Vec<f64>,
    /// Among center-oriented edges, the fraction whose net morning flow
    /// moves bikes *toward* the center.
    pub inbound_fraction: f64,
}

/// Compute the [`FlowSummary`].
pub fn summarize(field: &FlowField) -> FlowSummary {
    let hourly_magnitude = field
        .flows
        .iter()
        .map(|hf| hf.iter().map(|f| f.abs()).sum())
        .collect();
    let mut inbound = 0usize;
    let mut oriented = 0usize;
    for e in 0..field.edges.len() {
        if field.orientation[e] == 0.0 {
            continue; // perpendicular to the commute; carries only noise
        }
        oriented += 1;
        let morning: f64 = (6..11).map(|h| field.flows[h][e]).sum();
        if morning * field.orientation[e] > 0.0 {
            inbound += 1;
        }
    }
    let inbound_fraction = inbound as f64 / oriented.max(1) as f64;
    FlowSummary {
        hourly_magnitude,
        inbound_fraction,
    }
}

/// Convenience: canonical-edge map for tests.
pub fn edge_index(field: &FlowField) -> FxHashMap<(NodeId, NodeId), usize> {
    field
        .edges
        .iter()
        .enumerate()
        .map(|(e, &uv)| (uv, e))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfs_graph::GraphBuilder;

    fn grid(side: usize) -> Graph {
        let mut b = GraphBuilder::new(side * side);
        for r in 0..side {
            for c in 0..side {
                let v = (r * side + c) as NodeId;
                if c + 1 < side {
                    b.add_edge(v, v + 1, 10);
                }
                if r + 1 < side {
                    b.add_edge(v, v + side as NodeId, 10);
                }
            }
        }
        b.build()
    }

    #[test]
    fn divergence_conserves_mass() {
        // Flow moves bikes around but never creates them: per hour, the sum
        // of divergences is exactly zero.
        let g = grid(8);
        let field = generate_flow_field(&g, 5);
        let div = divergence(&g, &field);
        for (h, hour) in div.iter().enumerate() {
            let total: f64 = hour.iter().sum();
            assert!(total.abs() < 1e-9, "hour {h}: mass {total}");
        }
    }

    #[test]
    fn demand_is_a_distribution() {
        let g = grid(8);
        let field = generate_flow_field(&g, 5);
        let demand = docking_demand(&g, &field);
        assert_eq!(demand.len(), g.num_nodes());
        assert!(demand.iter().all(|&x| x >= 0.0));
        let total: f64 = demand.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sums to {total}");
    }

    #[test]
    fn commuting_structure_is_visible() {
        let g = grid(10);
        let field = generate_flow_field(&g, 7);
        let s = summarize(&field);
        // Morning flows lean toward the center.
        assert!(
            s.inbound_fraction > 0.6,
            "inbound fraction {}",
            s.inbound_fraction
        );
        // Peaks beat the 3 AM trough.
        let peak = s.hourly_magnitude[8].max(s.hourly_magnitude[17]);
        assert!(
            peak > 1.5 * s.hourly_magnitude[3],
            "peak {peak} vs night {}",
            s.hourly_magnitude[3]
        );
    }

    #[test]
    fn center_demand_varies_most_in_aggregate() {
        // Divergence variance concentrates where commuting flow terminates;
        // the center region must carry more demand than the global average.
        let g = grid(9);
        let field = generate_flow_field(&g, 11);
        let demand = docking_demand(&g, &field);
        let avg = 1.0 / g.num_nodes() as f64;
        assert!(
            demand[field.center as usize] > avg,
            "center demand {} vs avg {avg}",
            demand[field.center as usize]
        );
    }

    #[test]
    fn stations_are_valid() {
        let g = grid(10);
        let st = generate_stations(&g, 30, 3);
        assert_eq!(st.len(), 30);
        assert!(st.iter().all(|s| (2..=40).contains(&s.capacity)));
        let mut nodes: Vec<NodeId> = st.iter().map(|s| s.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 30);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = grid(6);
        let a = generate_flow_field(&g, 9);
        let b = generate_flow_field(&g, 9);
        assert_eq!(a.center, b.center);
        assert_eq!(a.flows, b.flows);
    }
}
