//! Capacity models used across the paper's experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sample_normal;

/// Uniform capacities `c` for all `l` facilities (Figures 6a–c, 7, 9b…).
pub fn uniform(l: usize, c: u32) -> Vec<u32> {
    vec![c; l]
}

/// Independent uniform random capacities in `lo..=hi` — the paper's
/// Figure 6d uses `U(1, 10)`.
pub fn uniform_random(l: usize, lo: u32, hi: u32, seed: u64) -> Vec<u32> {
    assert!(
        lo >= 1 && lo <= hi,
        "capacity range must be positive and ordered"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..l).map(|_| rng.random_range(lo..=hi)).collect()
}

/// Operational-hours capacities: `N(9, 3²)` clamped to `1..=24`, matching
/// the venue model of Section VII-F1 (average 9 hours in both cities).
pub fn operational_hours(l: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..l)
        .map(|_| {
            (9.0 + 3.0 * sample_normal(&mut rng))
                .round()
                .clamp(1.0, 24.0) as u32
        })
        .collect()
}

/// The paper's occupancy measure `o = m / (c̄ · k)` — how close a
/// configuration sits to full capacity (feasible only when `o ≤ 1`).
pub fn occupancy(m: usize, capacities: &[u32], k: usize) -> f64 {
    let mean: f64 = capacities.iter().map(|&c| c as f64).sum::<f64>() / capacities.len() as f64;
    m as f64 / (mean * k as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fills() {
        assert_eq!(uniform(4, 20), vec![20, 20, 20, 20]);
    }

    #[test]
    fn random_range_respected() {
        let caps = uniform_random(1000, 1, 10, 3);
        assert!(caps.iter().all(|&c| (1..=10).contains(&c)));
        // All values appear with a healthy sample.
        for v in 1..=10u32 {
            assert!(caps.contains(&v), "capacity {v} never drawn");
        }
        assert_eq!(caps, uniform_random(1000, 1, 10, 3));
    }

    #[test]
    fn hours_are_clamped_with_sane_mean() {
        let caps = operational_hours(2000, 8);
        assert!(caps.iter().all(|&c| (1..=24).contains(&c)));
        let mean: f64 = caps.iter().map(|&c| c as f64).sum::<f64>() / 2000.0;
        assert!((7.5..10.5).contains(&mean), "mean {mean}");
    }

    #[test]
    fn occupancy_matches_paper_examples() {
        // Figure 6a: c = 20, k = 0.1 m ⇒ o = m / (20 · 0.1 m) = 0.5.
        let caps = uniform(100, 20);
        let o = occupancy(1000, &caps, 100);
        assert!((o - 0.5).abs() < 1e-9);
    }
}
