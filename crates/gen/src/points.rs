//! Point scatters on the generator plane (paper Section VII-B, Figure 5).
//!
//! "We create synthetic graphs by placing points on a `10³ × 10³` square. We
//! use two distributions, uniform and clustered. In the clustered case, we
//! place cluster centers uniformly at random. We then assign an equal number
//! of points to each cluster, and form a Gaussian distribution for each
//! cluster with the center as mean." The paper tunes the deviation "so that
//! clusters cover the plane"; [`clustered_points`] exposes that tuning knob
//! with a covering default.

use mcfs_graph::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sample_normal;

/// Side length of the paper's generator square.
pub const DEFAULT_SIDE: f64 = 1000.0;

/// Which scatter to generate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PointDistribution {
    /// Uniform over the square.
    Uniform,
    /// Gaussian clusters around uniformly placed centers.
    Clustered {
        /// Number of clusters (paper uses 40, 20 and 5).
        clusters: usize,
    },
}

/// `n` points uniform on `[0, side]²`.
pub fn uniform_points(n: usize, side: f64, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.random::<f64>() * side, rng.random::<f64>() * side))
        .collect()
}

/// Output of [`clustered_points`]: the scatter plus its cluster structure.
#[derive(Clone, Debug)]
pub struct ClusteredPoints {
    /// All points; points of cluster `c` occupy the contiguous range
    /// `ranges[c]`.
    pub points: Vec<Point>,
    /// Cluster centers (also appended as the *first* point of each range, so
    /// centers are actual nodes, enabling the paper's center clique).
    pub centers: Vec<Point>,
    /// Index of each cluster's center point within `points`.
    pub center_indices: Vec<usize>,
}

/// `n` points in `clusters` Gaussian clusters on `[0, side]²`.
///
/// `sigma` is the per-axis standard deviation; `None` uses the covering
/// default `side / (2·√clusters)` (clusters tile the plane as the paper
/// tunes them to). Samples falling outside the square are clamped to it.
/// Every cluster contributes `n / clusters` points (±1 for the remainder),
/// the first of which *is* the center.
pub fn clustered_points(
    n: usize,
    clusters: usize,
    side: f64,
    sigma: Option<f64>,
    seed: u64,
) -> ClusteredPoints {
    assert!(clusters >= 1, "need at least one cluster");
    assert!(n >= clusters, "need at least one point per cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    let sigma = sigma.unwrap_or(side / (2.0 * (clusters as f64).sqrt()));
    let centers: Vec<Point> = (0..clusters)
        .map(|_| Point::new(rng.random::<f64>() * side, rng.random::<f64>() * side))
        .collect();

    let mut points = Vec::with_capacity(n);
    let mut center_indices = Vec::with_capacity(clusters);
    let base = n / clusters;
    let extra = n % clusters;
    for (c, &center) in centers.iter().enumerate() {
        let count = base + usize::from(c < extra);
        center_indices.push(points.len());
        points.push(center); // the center is a real node
        for _ in 1..count {
            let x = (center.x + sigma * sample_normal(&mut rng)).clamp(0.0, side);
            let y = (center.y + sigma * sample_normal(&mut rng)).clamp(0.0, side);
            points.push(Point::new(x, y));
        }
    }
    ClusteredPoints {
        points,
        centers,
        center_indices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_stays_in_square_and_is_seeded() {
        let a = uniform_points(500, 1000.0, 7);
        let b = uniform_points(500, 1000.0, 7);
        let c = uniform_points(500, 1000.0, 8);
        assert_eq!(a.len(), 500);
        assert!(a
            .iter()
            .all(|p| (0.0..=1000.0).contains(&p.x) && (0.0..=1000.0).contains(&p.y)));
        assert_eq!(a, b, "same seed, same scatter");
        assert_ne!(a, c, "different seed, different scatter");
    }

    #[test]
    fn uniform_covers_all_quadrants() {
        let pts = uniform_points(2000, 1000.0, 3);
        for (qx, qy) in [(false, false), (false, true), (true, false), (true, true)] {
            let cnt = pts
                .iter()
                .filter(|p| (p.x > 500.0) == qx && (p.y > 500.0) == qy)
                .count();
            assert!(cnt > 300, "quadrant ({qx},{qy}) has {cnt} points");
        }
    }

    #[test]
    fn clusters_have_equal_sizes_and_real_centers() {
        let cp = clustered_points(1003, 20, 1000.0, None, 42);
        assert_eq!(cp.points.len(), 1003);
        assert_eq!(cp.centers.len(), 20);
        assert_eq!(cp.center_indices.len(), 20);
        for (c, &ci) in cp.center_indices.iter().enumerate() {
            assert_eq!(cp.points[ci], cp.centers[c]);
        }
        // Sizes differ by at most one.
        let mut sizes = Vec::new();
        for c in 0..20 {
            let end = cp
                .center_indices
                .get(c + 1)
                .copied()
                .unwrap_or(cp.points.len());
            sizes.push(end - cp.center_indices[c]);
        }
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn tight_sigma_concentrates_points() {
        let cp = clustered_points(400, 4, 1000.0, Some(5.0), 9);
        for c in 0..4 {
            let lo = cp.center_indices[c];
            let hi = cp
                .center_indices
                .get(c + 1)
                .copied()
                .unwrap_or(cp.points.len());
            let center = cp.centers[c];
            let close = cp.points[lo..hi]
                .iter()
                .filter(|p| p.dist(&center) < 25.0)
                .count();
            assert!(
                close as f64 > 0.95 * (hi - lo) as f64,
                "cluster {c}: only {close}/{} points within 5σ",
                hi - lo
            );
        }
    }

    #[test]
    fn clamping_keeps_points_inside() {
        // Huge sigma forces lots of clamping; all points must stay legal.
        let cp = clustered_points(300, 3, 100.0, Some(500.0), 11);
        assert!(cp
            .points
            .iter()
            .all(|p| (0.0..=100.0).contains(&p.x) && (0.0..=100.0).contains(&p.y)));
    }
}
