//! Synthetic city road networks — the OSM substitution.
//!
//! The paper evaluates on OpenStreetMap extracts of four cities (Table III).
//! We cannot ship those, so this module generates road networks *calibrated
//! to the statistics the paper reports*: node/edge counts, average degree
//! ≈ 2.2–2.4, average edge length 28–50 m, and the two topology families the
//! paper distinguishes — the grid-like Las Vegas layout ("regular grid-like
//! road network structure", Section VII-E) versus the organic European
//! street patterns of Aalborg, Riga and Copenhagen.
//!
//! The construction mirrors how OSM data looks as a graph: a coarse
//! *backbone* of intersections (a perturbed grid, or a random geometric
//! graph) whose edges are then subdivided into ~30–50 m segments. The
//! subdivision introduces the long chains of degree-2 nodes that push the
//! average degree down to the observed ≈ 2.2 while keeping max degree at
//! intersection levels.

use mcfs_graph::{Graph, GraphBuilder, GridIndex, NodeId, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Topology family of a synthetic city.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CityStyle {
    /// Perturbed rectangular grid (Las-Vegas-like).
    Grid,
    /// Random-geometric organic street pattern (European-like).
    Organic,
}

/// Specification of a synthetic city.
#[derive(Clone, Debug)]
pub struct CitySpec {
    /// Display name.
    pub name: &'static str,
    /// Approximate node count to hit (the subdivision makes it exact only
    /// approximately).
    pub target_nodes: usize,
    /// Topology family.
    pub style: CityStyle,
    /// Target average edge (segment) length in meters.
    pub avg_edge_len: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CitySpec {
    /// The paper's four cities (Table III), scaled by `scale` (1.0 = the
    /// paper's node counts; experiments typically use < 1 to stay within
    /// minutes instead of hours).
    pub fn paper_cities(scale: f64) -> Vec<CitySpec> {
        let s = |n: usize| ((n as f64 * scale) as usize).max(500);
        vec![
            CitySpec {
                name: "Aalborg",
                target_nodes: s(50_961),
                style: CityStyle::Organic,
                avg_edge_len: 30.2,
                seed: 0xAA1B06,
            },
            CitySpec {
                name: "Riga",
                target_nodes: s(287_927),
                style: CityStyle::Organic,
                avg_edge_len: 28.7,
                seed: 0x416A,
            },
            CitySpec {
                name: "Copenhagen",
                target_nodes: s(282_826),
                style: CityStyle::Organic,
                avg_edge_len: 32.6,
                seed: 0xC0BE,
            },
            CitySpec {
                name: "LasVegas",
                target_nodes: s(425_759),
                style: CityStyle::Grid,
                avg_edge_len: 50.4,
                seed: 0x1A57,
            },
        ]
    }
}

/// Generate the city network. Coordinates are meters.
pub fn generate_city(spec: &CitySpec) -> Graph {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    // Subdivision factor chosen so avg degree lands near the observed 2.2:
    // backbone edges split into `t` segments multiply edges by t and add
    // (t-1) degree-2 nodes per edge.
    let t = 5usize;
    match spec.style {
        CityStyle::Grid => grid_city(spec, t, &mut rng),
        CityStyle::Organic => organic_city(spec, t, &mut rng),
    }
}

/// Perturbed grid backbone with random street removals, subdivided.
fn grid_city(spec: &CitySpec, t: usize, rng: &mut StdRng) -> Graph {
    // Backbone intersections: V ≈ B + E_B (t − 1), grid has E_B ≈ 2B, so
    // B ≈ V / (2t − 1).
    let b_nodes = (spec.target_nodes / (2 * t - 1)).max(4);
    let cols = (b_nodes as f64).sqrt().round() as usize;
    let rows = b_nodes.div_ceil(cols);
    let block = spec.avg_edge_len * t as f64; // block side in meters

    let mut backbone_pts = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            // Slight jitter so the grid is not perfectly regular.
            let jx = (rng.random::<f64>() - 0.5) * 0.2 * block;
            let jy = (rng.random::<f64>() - 0.5) * 0.2 * block;
            backbone_pts.push(Point::new(c as f64 * block + jx, r as f64 * block + jy));
        }
    }
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            // ~7% of street segments are missing (dead ends, parks).
            if c + 1 < cols && rng.random::<f64>() > 0.07 {
                edges.push((v, v + 1));
            }
            if r + 1 < rows && rng.random::<f64>() > 0.07 {
                edges.push((v, v + cols));
            }
        }
    }
    subdivide(&backbone_pts, &edges, t, rng)
}

/// Random-geometric backbone (organic intersections), subdivided.
fn organic_city(spec: &CitySpec, t: usize, rng: &mut StdRng) -> Graph {
    // Organic backbones average ~3 street ends per intersection:
    // E_B ≈ 1.5 B, V ≈ B(1 + 1.5(t−1)) ⇒ B ≈ V / (1.5t − 0.5).
    let b_nodes = ((spec.target_nodes as f64) / (1.5 * t as f64 - 0.5)).ceil() as usize;
    let b_nodes = b_nodes.max(4);
    // Density: side chosen so the mean spacing yields segment lengths around
    // avg_edge_len · t between intersections.
    let spacing = spec.avg_edge_len * t as f64;
    let side = spacing * (b_nodes as f64).sqrt();
    let pts: Vec<Point> = (0..b_nodes)
        .map(|_| Point::new(rng.random::<f64>() * side, rng.random::<f64>() * side))
        .collect();

    // Connect each intersection to its ~3 nearest neighbors (radius graph
    // trimmed to a degree cap), giving winding, irregular street patterns.
    let radius = spacing * 1.6;
    let index = GridIndex::build(&pts, radius);
    let mut degree = vec![0usize; b_nodes];
    let mut edges = Vec::new();
    for i in 0..b_nodes {
        let mut near: Vec<u32> = index
            .within_radius(pts[i], radius)
            .into_iter()
            .filter(|&j| (j as usize) > i)
            .collect();
        near.sort_by(|&a, &b| {
            pts[a as usize]
                .dist2(&pts[i])
                .total_cmp(&pts[b as usize].dist2(&pts[i]))
        });
        for j in near {
            if degree[i] >= 4 {
                break;
            }
            if degree[j as usize] >= 4 {
                continue;
            }
            degree[i] += 1;
            degree[j as usize] += 1;
            edges.push((i, j as usize));
        }
    }
    subdivide(&pts, &edges, t, rng)
}

/// Subdivide every backbone edge into `t` road segments, inserting `t − 1`
/// degree-2 nodes along the straight line, with mild jitter so segment
/// lengths vary like real roads.
fn subdivide(backbone: &[Point], edges: &[(usize, usize)], t: usize, rng: &mut StdRng) -> Graph {
    let mut points: Vec<Point> = backbone.to_vec();
    let mut final_edges: Vec<(usize, usize, u64)> = Vec::with_capacity(edges.len() * t);
    for &(u, v) in edges {
        let (a, b) = (backbone[u], backbone[v]);
        let mut prev = u;
        for step in 1..t {
            let frac = step as f64 / t as f64;
            let jitter = (rng.random::<f64>() - 0.5) * 0.1;
            let p = Point::new(
                a.x + (b.x - a.x) * (frac + jitter / t as f64),
                a.y + (b.y - a.y) * (frac + jitter / t as f64),
            );
            let id = points.len();
            points.push(p);
            let w = points[prev].dist(&p).round().max(1.0) as u64;
            final_edges.push((prev, id, w));
            prev = id;
        }
        let w = points[prev].dist(&b).round().max(1.0) as u64;
        final_edges.push((prev, v, w));
    }
    let mut builder = GraphBuilder::with_coords(points);
    for (u, v, w) in final_edges {
        builder.add_edge(u as NodeId, v as NodeId, w);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfs_graph::connected_components;

    fn small_spec(style: CityStyle) -> CitySpec {
        CitySpec {
            name: "Test",
            target_nodes: 4000,
            style,
            avg_edge_len: 35.0,
            seed: 42,
        }
    }

    #[test]
    fn grid_city_matches_table_iii_shape() {
        let g = generate_city(&small_spec(CityStyle::Grid));
        let nodes = g.num_nodes();
        assert!((3000..6000).contains(&nodes), "node count {nodes}");
        let deg = g.avg_degree();
        assert!(
            (1.8..2.8).contains(&deg),
            "avg degree {deg} outside road-network band"
        );
        let len = g.avg_edge_length();
        assert!((20.0..60.0).contains(&len), "avg segment length {len}");
    }

    #[test]
    fn organic_city_matches_table_iii_shape() {
        let g = generate_city(&small_spec(CityStyle::Organic));
        let deg = g.avg_degree();
        assert!((1.6..2.8).contains(&deg), "avg degree {deg}");
        let len = g.avg_edge_length();
        assert!((20.0..60.0).contains(&len), "avg segment length {len}");
        assert!(g.max_degree() <= 8, "organic intersections stay small");
    }

    #[test]
    fn cities_are_mostly_connected() {
        for style in [CityStyle::Grid, CityStyle::Organic] {
            let g = generate_city(&small_spec(style));
            let cc = connected_components(&g);
            let giant = *cc.sizes.iter().max().unwrap();
            assert!(
                giant as f64 > 0.85 * g.num_nodes() as f64,
                "{style:?}: giant component {giant}/{}",
                g.num_nodes()
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_city(&small_spec(CityStyle::Grid));
        let b = generate_city(&small_spec(CityStyle::Grid));
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_arcs(), b.num_arcs());
    }

    #[test]
    fn paper_cities_scale() {
        let specs = CitySpec::paper_cities(0.01);
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0].name, "Aalborg");
        assert!(specs[3].target_nodes > specs[0].target_nodes);
        // Generation works for each at tiny scale.
        for spec in &specs {
            let g = generate_city(spec);
            assert!(g.num_nodes() > 100, "{}: {}", spec.name, g.num_nodes());
        }
    }
}
