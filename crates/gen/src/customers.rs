//! Customer placement models.
//!
//! * [`uniform_customers`] — "we randomly assign customers to 10% of all
//!   nodes" (Section VII-C): distinct nodes sampled uniformly.
//! * [`sample_weighted`] — generic weighted sampling with replacement (used
//!   by the venue and bike demand models; the paper's Figure 8c explicitly
//!   allows "multiple customers per node").
//! * [`district_population_model`] — the Copenhagen coworking model
//!   (Section VII-F1b): "a customer distribution proportional to that of
//!   district populations", realized as a network-Voronoi partition into
//!   districts with heavy-tailed populations.

use mcfs_graph::{multi_source_dijkstra, Graph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::sample_normal;

/// `m` customers on distinct uniformly chosen nodes.
///
/// Panics if `m > g.num_nodes()`.
pub fn uniform_customers(g: &Graph, m: usize, seed: u64) -> Vec<NodeId> {
    assert!(
        m <= g.num_nodes(),
        "cannot place {m} distinct customers on {} nodes",
        g.num_nodes()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<NodeId> = g.nodes().collect();
    nodes.shuffle(&mut rng);
    nodes.truncate(m);
    nodes
}

/// `count` distinct uniformly chosen nodes — the paper's `F_p` sampling when
/// `ℓ < n` (Figure 8a varies `|F_p|` from 40% to 100% of nodes).
pub fn uniform_nodes(g: &Graph, count: usize, seed: u64) -> Vec<NodeId> {
    uniform_customers(g, count, seed)
}

/// Sample `m` nodes (with replacement) proportionally to `weights`.
/// Zero-weight nodes are never drawn; weights need not be normalized.
pub fn sample_weighted(weights: &[f64], m: usize, seed: u64) -> Vec<NodeId> {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must have positive mass");
    let mut rng = StdRng::seed_from_u64(seed);
    // Cumulative distribution + binary search per draw.
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for &w in weights {
        debug_assert!(w >= 0.0, "negative weight");
        acc += w;
        cdf.push(acc);
    }
    (0..m)
        .map(|_| {
            let x = rng.random::<f64>() * total;
            cdf.partition_point(|&c| c < x).min(weights.len() - 1) as NodeId
        })
        .collect()
}

/// Zero out the weights of nodes that cannot reach any of `anchors` — used
/// to keep weighted customer draws feasible when the network is fragmented
/// (a customer in a station-less island can never be served).
pub fn mask_to_reachable(g: &Graph, weights: &[f64], anchors: &[NodeId]) -> Vec<f64> {
    let (dist, _) = multi_source_dijkstra(g, anchors);
    weights
        .iter()
        .zip(&dist)
        .map(|(&w, &d)| if d == mcfs_graph::INF { 0.0 } else { w })
        .collect()
}

/// Per-node weights for the district-population model: the network is split
/// into `districts` network-Voronoi cells around random seeds; each district
/// draws a log-normal population, spread evenly over its nodes.
pub fn district_population_model(g: &Graph, districts: usize, seed: u64) -> Vec<f64> {
    assert!(districts >= 1 && districts <= g.num_nodes());
    let mut rng = StdRng::seed_from_u64(seed);
    let centers = uniform_customers(g, districts, rng.random());
    let (_, owner) = multi_source_dijkstra(g, &centers);
    // Log-normal populations: median city-district ratios are heavy-tailed.
    let pops: Vec<f64> = (0..districts)
        .map(|_| (0.75 * sample_normal(&mut rng)).exp())
        .collect();
    let mut sizes = vec![0usize; districts];
    for &o in &owner {
        if o != usize::MAX {
            sizes[o] += 1;
        }
    }
    owner
        .iter()
        .map(|&o| {
            if o == usize::MAX {
                0.0
            } else {
                pops[o] / sizes[o] as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfs_graph::GraphBuilder;

    fn grid(n: usize) -> Graph {
        let side = (n as f64).sqrt() as usize;
        let mut b = GraphBuilder::new(side * side);
        for r in 0..side {
            for c in 0..side {
                let v = (r * side + c) as NodeId;
                if c + 1 < side {
                    b.add_edge(v, v + 1, 10);
                }
                if r + 1 < side {
                    b.add_edge(v, v + side as NodeId, 10);
                }
            }
        }
        b.build()
    }

    #[test]
    fn uniform_customers_are_distinct() {
        let g = grid(400);
        let cs = uniform_customers(&g, 40, 1);
        assert_eq!(cs.len(), 40);
        let mut sorted = cs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 40, "no duplicates");
        assert_eq!(cs, uniform_customers(&g, 40, 1), "seeded determinism");
        assert_ne!(cs, uniform_customers(&g, 40, 2));
    }

    #[test]
    #[should_panic(expected = "distinct customers")]
    fn too_many_customers_panics() {
        let g = grid(9);
        uniform_customers(&g, 100, 0);
    }

    #[test]
    fn weighted_sampling_respects_zero_and_mass() {
        let weights = vec![0.0, 1.0, 3.0, 0.0];
        let draws = sample_weighted(&weights, 4000, 5);
        assert!(draws.iter().all(|&v| v == 1 || v == 2));
        let twos = draws.iter().filter(|&&v| v == 2).count();
        // Expect ≈ 75%; allow generous slack.
        assert!((2700..3300).contains(&twos), "got {twos} draws of node 2");
    }

    #[test]
    fn district_model_is_a_distribution_over_the_graph() {
        let g = grid(400);
        let w = district_population_model(&g, 10, 7);
        assert_eq!(w.len(), g.num_nodes());
        assert!(w.iter().all(|&x| x >= 0.0));
        assert!(w.iter().sum::<f64>() > 0.0);
        // Districts differ: there must be meaningfully different weights.
        let mut uniq: Vec<u64> = w.iter().map(|&x| (x * 1e9) as u64).collect();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(
            uniq.len() >= 5,
            "only {} distinct weight levels",
            uniq.len()
        );
    }

    #[test]
    fn mask_zeroes_unreachable_islands() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(2, 3, 1);
        let g = b.build();
        let w = mask_to_reachable(&g, &[1.0, 1.0, 1.0, 1.0], &[0]);
        assert_eq!(w, vec![1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn district_model_feeds_weighted_sampling() {
        let g = grid(100);
        let w = district_population_model(&g, 4, 3);
        let customers = sample_weighted(&w, 50, 9);
        assert_eq!(customers.len(), 50);
        assert!(customers.iter().all(|&c| (c as usize) < g.num_nodes()));
    }
}
