//! Synthetic network construction (paper Section VII-B).
//!
//! "We connect pairs of points with an edge if they are closer than
//! `α · 1/√n`, where `α` is a tunable density parameter and `n` is the
//! network size in nodes. We connect cluster centers to each other in a
//! clique and assign edge weights equal to Euclidean distances." The radius
//! is expressed in plane units (`α · side/√n`); `α = 2` then yields the
//! paper's "average of two adjacent edges per node" on uniform scatters.

use mcfs_graph::{Graph, GraphBuilder, GridIndex, NodeId};

use crate::points::{clustered_points, uniform_points, PointDistribution, DEFAULT_SIDE};

/// Configuration for a synthetic network.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Number of nodes `n`.
    pub n: usize,
    /// Density parameter `α` (paper uses 1.2–2.0).
    pub alpha: f64,
    /// Point scatter.
    pub distribution: PointDistribution,
    /// Square side (paper: 1000).
    pub side: f64,
    /// Cluster spread override (clustered only); `None` = covering default.
    pub sigma: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// Uniform scatter with the paper's square.
    pub fn uniform(n: usize, alpha: f64, seed: u64) -> Self {
        Self {
            n,
            alpha,
            distribution: PointDistribution::Uniform,
            side: DEFAULT_SIDE,
            sigma: None,
            seed,
        }
    }

    /// Clustered scatter with the paper's square.
    pub fn clustered(n: usize, clusters: usize, alpha: f64, seed: u64) -> Self {
        Self {
            n,
            alpha,
            distribution: PointDistribution::Clustered { clusters },
            side: DEFAULT_SIDE,
            sigma: None,
            seed,
        }
    }
}

/// Build the radius graph over the configured scatter. Edge weights are
/// Euclidean distances rounded to integers (≥ 1). Cluster centers (when
/// clustered) additionally form a clique, as in the paper.
///
/// ```
/// use mcfs_gen::synthetic::{generate_synthetic, SyntheticConfig};
///
/// let g = generate_synthetic(&SyntheticConfig::uniform(300, 2.0, 7));
/// assert_eq!(g.num_nodes(), 300);
/// assert!(g.coords().is_some());
/// assert!(g.avg_degree() > 1.0);
/// ```
pub fn generate_synthetic(cfg: &SyntheticConfig) -> Graph {
    let radius = cfg.alpha * cfg.side / (cfg.n as f64).sqrt();
    let (points, center_indices) = match cfg.distribution {
        PointDistribution::Uniform => (uniform_points(cfg.n, cfg.side, cfg.seed), Vec::new()),
        PointDistribution::Clustered { clusters } => {
            let cp = clustered_points(cfg.n, clusters, cfg.side, cfg.sigma, cfg.seed);
            (cp.points, cp.center_indices)
        }
    };

    let index = GridIndex::build(&points, radius.max(1e-9));
    let mut b = GraphBuilder::with_coords(points.clone());
    for (i, &p) in points.iter().enumerate() {
        for j in index.within_radius(p, radius) {
            // Each unordered pair once.
            if (j as usize) > i {
                let w = points[i].dist(&points[j as usize]).round().max(1.0) as u64;
                b.add_edge(i as NodeId, j, w);
            }
        }
    }
    // Cluster-center clique.
    for (a, &ca) in center_indices.iter().enumerate() {
        for &cb in center_indices.iter().skip(a + 1) {
            let d = points[ca].dist(&points[cb]);
            if d > radius {
                // Pairs within the radius already got an edge above.
                b.add_edge(ca as NodeId, cb as NodeId, d.round().max(1.0) as u64);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfs_graph::connected_components;

    #[test]
    fn alpha_two_gives_about_degree_four() {
        // α = 2 ⇒ expected ~π·α² ≈ 12.6 neighbors in-circle... but the paper
        // speaks of "two adjacent edges per node" for α = 2, counting
        // undirected edges per node ≈ half the degree. We verify the graph
        // is in a sane density band and grows with α.
        let sparse = generate_synthetic(&SyntheticConfig::uniform(2000, 1.2, 5));
        let dense = generate_synthetic(&SyntheticConfig::uniform(2000, 2.0, 5));
        assert!(dense.avg_degree() > sparse.avg_degree());
        assert!(
            sparse.avg_degree() > 1.0,
            "sparse degree {}",
            sparse.avg_degree()
        );
        assert!(
            dense.avg_degree() < 16.0,
            "dense degree {}",
            dense.avg_degree()
        );
    }

    #[test]
    fn weights_are_euclidean() {
        let g = generate_synthetic(&SyntheticConfig::uniform(500, 2.0, 1));
        let coords = g.coords().unwrap();
        for v in g.nodes().take(50) {
            for (u, w) in g.neighbors(v) {
                let d = coords[v as usize]
                    .dist(&coords[u as usize])
                    .round()
                    .max(1.0) as u64;
                assert_eq!(w, d, "edge ({v},{u})");
            }
        }
    }

    #[test]
    fn clustered_centers_form_a_clique() {
        let g = generate_synthetic(&SyntheticConfig::clustered(1000, 5, 1.2, 3));
        // The 5 centers are the first point of each cluster; with equal
        // cluster sizes of 200 they are nodes 0, 200, 400, 600, 800.
        let centers: Vec<NodeId> = (0..5).map(|c| (c * 200) as NodeId).collect();
        for &a in &centers {
            for &b in &centers {
                if a != b {
                    assert!(
                        g.neighbors(a).any(|(u, _)| u == b),
                        "centers {a} and {b} must be adjacent"
                    );
                }
            }
        }
        // The clique glues clusters together: the graph cannot have more
        // components than isolated stragglers allow.
        let cc = connected_components(&g);
        let giant = cc.sizes.iter().max().unwrap();
        assert!(
            *giant > 500,
            "giant component holds most nodes, got {giant}"
        );
    }

    #[test]
    fn deterministic_generation() {
        let cfg = SyntheticConfig::clustered(800, 20, 1.5, 99);
        let a = generate_synthetic(&cfg);
        let b = generate_synthetic(&cfg);
        assert_eq!(a.num_arcs(), b.num_arcs());
        assert_eq!(a.avg_edge_length(), b.avg_edge_length());
    }

    #[test]
    fn sparser_alpha_fragments_the_graph() {
        let tight = generate_synthetic(&SyntheticConfig::uniform(1500, 1.2, 17));
        let loose = generate_synthetic(&SyntheticConfig::uniform(1500, 2.5, 17));
        let cc_tight = connected_components(&tight).count;
        let cc_loose = connected_components(&loose).count;
        assert!(
            cc_tight >= cc_loose,
            "α=1.2 gives {cc_tight} components vs {cc_loose} at α=2.5"
        );
        assert!(cc_tight > 1, "the paper's sparse setting is disconnected");
    }
}
