//! Workload generators for the MCFS reproduction — every dataset the
//! paper's evaluation (Section VII) draws on, rebuilt synthetically:
//!
//! * [`points`] — uniform and clustered point scatters on the
//!   `10³ × 10³` square (paper Figure 5);
//! * [`synthetic`] — the radius-graph construction over those scatters
//!   ("connect pairs of points closer than `α/√n`", Section VII-B);
//! * [`city`] — synthetic road networks calibrated to the Table III
//!   statistics of the paper's four OSM cities (the OSM substitution);
//! * [`customers`] — customer placement models: uniform node sampling and
//!   the district-population model (Copenhagen, Section VII-F1b);
//! * [`venues`] — venues with operational-hours capacities plus the
//!   network-Voronoi occupancy-based customer distribution (the Yelp
//!   substitution, Section VII-F1a);
//! * [`bikes`] — a synthetic hourly bike-flow field, its divergence and the
//!   variance-based docking-demand distribution (the bike-counter
//!   substitution, Section VII-F2), plus docking-station generation;
//! * [`capacities`] — capacity models: uniform, `U(1, 10)` (Figure 6d) and
//!   operational-hours.
//!
//! All generators are deterministic given their seed.

#![warn(missing_docs)]

pub mod bikes;
pub mod capacities;
pub mod city;
pub mod customers;
pub mod points;
pub mod synthetic;
pub mod venues;

pub use city::{generate_city, CitySpec, CityStyle};
pub use points::{clustered_points, uniform_points, PointDistribution};
pub use synthetic::{generate_synthetic, SyntheticConfig};

/// Draw a standard-normal sample via Box–Muller (keeps the dependency set
/// to plain `rand`).
pub(crate) fn sample_normal(rng: &mut impl rand::Rng) -> f64 {
    loop {
        let u1: f64 = rng.random();
        let u2: f64 = rng.random();
        if u1 > f64::EPSILON {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}
