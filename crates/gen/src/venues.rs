//! Venues and the occupancy-driven customer distribution — the Yelp
//! substitution (paper Section VII-F1a).
//!
//! The paper derives a customer distribution from venue occupancies: space
//! is split into (network-adapted) Voronoi cells around venues, each cell
//! into triangles toward neighboring venues, and a triangle receives
//!
//! ```text
//! m_Δ = O_i · ( ω · O_j / Σ_j O_j  +  (1 − ω) · Area_Δ / Area_∪Δ )
//! ```
//!
//! customers, where `O_i` is the central venue's occupancy, `O_j` a
//! neighbor's, and `ω = 0.5` by default. Our network analogue replaces
//! triangles by node sets: a node in venue `i`'s network-Voronoi cell whose
//! *second*-nearest venue is `j` belongs to the "triangle" `T_ij`, and area
//! shares become node-count shares. Occupancies are synthetic heavy-tailed
//! values (the substitution documented in DESIGN.md); operational hours
//! double as capacities, mean ≈ 9 h as the paper reports for both cities.

use mcfs_graph::{two_nearest_sources, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashMap;

use crate::customers::uniform_customers;
use crate::sample_normal;

/// A venue: location, synthetic check-in occupancy, and operational hours
/// (the capacity proxy).
#[derive(Clone, Copy, Debug)]
pub struct Venue {
    /// Node the venue sits on.
    pub node: NodeId,
    /// Heavy-tailed popularity (check-in) score.
    pub occupancy: f64,
    /// Daily operational hours in `1..=24`; the paper uses these as
    /// capacities (average 9 in both its cities).
    pub hours: u32,
}

/// Generate `count` venues on distinct nodes with log-normal occupancies
/// and operational hours ≈ N(9, 3²) clamped to `1..=24`.
pub fn generate_venues(g: &Graph, count: usize, seed: u64) -> Vec<Venue> {
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes = uniform_customers(g, count, rng.random());
    nodes
        .into_iter()
        .map(|node| {
            let occupancy = (1.0 * sample_normal(&mut rng)).exp();
            let hours = (9.0 + 3.0 * sample_normal(&mut rng))
                .round()
                .clamp(1.0, 24.0) as u32;
            Venue {
                node,
                occupancy,
                hours,
            }
        })
        .collect()
}

/// Per-node customer weights implementing the adapted `m_Δ` formula.
///
/// For a node `v` with nearest venue `i` and second-nearest venue `j`
/// (both by network distance):
///
/// ```text
/// weight(v) = O_i · ( ω · O_j / (Σ_{j'∈N(i)} O_{j'}) / |T_ij|
///                   + (1 − ω) / |cell_i| )
/// ```
///
/// where `N(i)` are the neighbor venues observed around cell `i` and
/// `T_ij` the nodes of cell `i` leaning toward `j` — so that summing the
/// weights over `T_ij` reproduces the paper's triangle mass `m_Δ` exactly,
/// with node counts standing in for areas. Cells with no observed neighbor
/// (single venue in a component) fall back to the pure area term.
pub fn venue_customer_weights(g: &Graph, venues: &[Venue], omega: f64) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&omega), "ω must be in [0, 1]");
    let n = g.num_nodes();
    let sources: Vec<NodeId> = venues.iter().map(|v| v.node).collect();
    let labels = two_nearest_sources(g, &sources);

    // Cell sizes |cell_i| and triangle sizes |T_ij|.
    let mut cell_size = vec![0usize; venues.len()];
    let mut tri_size: FxHashMap<(usize, usize), usize> = FxHashMap::default();
    #[allow(clippy::needless_range_loop)]
    for v in 0..n {
        let [(i, _), (j, _)] = labels[v];
        if i == usize::MAX {
            continue;
        }
        cell_size[i] += 1;
        if j != usize::MAX {
            *tri_size.entry((i, j)).or_insert(0) += 1;
        }
    }
    // Neighbor occupancy mass Σ_{j ∈ N(i)} O_j per cell.
    let mut neighbor_mass = vec![0.0f64; venues.len()];
    for &(i, j) in tri_size.keys() {
        neighbor_mass[i] += venues[j].occupancy;
    }

    (0..n)
        .map(|v| {
            let [(i, _), (j, _)] = labels[v];
            if i == usize::MAX {
                return 0.0;
            }
            let o_i = venues[i].occupancy;
            let area_term = (1.0 - omega) / cell_size[i] as f64;
            let pop_term = if j != usize::MAX && neighbor_mass[i] > 0.0 {
                omega * venues[j].occupancy / neighbor_mass[i] / tri_size[&(i, j)] as f64
            } else {
                0.0
            };
            o_i * (pop_term + area_term)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfs_graph::GraphBuilder;

    fn line(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i as NodeId, i as NodeId + 1, 10);
        }
        b.build()
    }

    #[test]
    fn venues_have_sane_hours_and_distinct_nodes() {
        let g = line(200);
        let vs = generate_venues(&g, 50, 3);
        assert_eq!(vs.len(), 50);
        assert!(vs.iter().all(|v| (1..=24).contains(&v.hours)));
        assert!(vs.iter().all(|v| v.occupancy > 0.0));
        let mut nodes: Vec<NodeId> = vs.iter().map(|v| v.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 50);
        let mean_hours = vs.iter().map(|v| v.hours as f64).sum::<f64>() / 50.0;
        assert!((6.0..12.0).contains(&mean_hours), "mean hours {mean_hours}");
    }

    #[test]
    fn weights_form_a_distribution_proportional_to_occupancy() {
        let g = line(100);
        // Two venues: a popular one at 20, an unpopular one at 80.
        let venues = vec![
            Venue {
                node: 20,
                occupancy: 10.0,
                hours: 9,
            },
            Venue {
                node: 80,
                occupancy: 1.0,
                hours: 9,
            },
        ];
        let w = venue_customer_weights(&g, &venues, 0.5);
        assert_eq!(w.len(), 100);
        assert!(w.iter().all(|&x| x >= 0.0));
        // Total mass near the popular venue's cell must dominate.
        let left: f64 = w[..50].iter().sum();
        let right: f64 = w[50..].iter().sum();
        assert!(left > 3.0 * right, "left {left} vs right {right}");
    }

    #[test]
    fn triangle_mass_matches_the_formula() {
        let g = line(100);
        let venues = vec![
            Venue {
                node: 20,
                occupancy: 4.0,
                hours: 9,
            },
            Venue {
                node: 80,
                occupancy: 2.0,
                hours: 9,
            },
        ];
        let omega = 0.5;
        let w = venue_customer_weights(&g, &venues, omega);
        // Cell of venue 0: nodes 0..=50 (ties at 50 go to the first-popped
        // label); its only neighbor is venue 1, so T_01 = cell_0 and the
        // summed mass must be O_0 · (ω·O_1/O_1 + (1−ω)) = O_0.
        let cell0: f64 = (0..=50).map(|v| w[v]).sum::<f64>();
        let cell0_alt: f64 = (0..=49).map(|v| w[v]).sum::<f64>();
        let expected = 4.0;
        assert!(
            (cell0 - expected).abs() < 1e-6 || (cell0_alt - expected).abs() < 1e-6,
            "cell mass {cell0} / {cell0_alt} vs expected {expected}"
        );
    }

    #[test]
    fn single_venue_component_uses_area_term_only() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(3, 4, 1);
        b.add_edge(4, 5, 1);
        let g = b.build();
        let venues = vec![Venue {
            node: 1,
            occupancy: 6.0,
            hours: 9,
        }];
        let w = venue_customer_weights(&g, &venues, 0.5);
        // Reachable cell: nodes 0..=2, each (1−ω)/3 · 6 = 1.0.
        assert!((w[0] - 1.0).abs() < 1e-9);
        assert!((w[1] - 1.0).abs() < 1e-9);
        assert!((w[2] - 1.0).abs() < 1e-9);
        // Disconnected nodes get zero.
        assert_eq!(&w[3..], &[0.0, 0.0, 0.0]);
    }
}
