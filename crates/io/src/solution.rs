//! Reading and writing solutions.
//!
//! A solution file references the instance it solves only implicitly (by
//! index), so callers should archive the two side by side; on load,
//! [`McfsInstance::verify`](mcfs::McfsInstance::verify) confirms the pair
//! still matches.

use std::io::{self, BufRead, Write};

use mcfs::Solution;

use crate::instance::ParseError;

/// Serialize a solution:
///
/// ```text
/// mcfs-solution v1
/// objective 1234
/// select 7
/// ...
/// assign 0 0
/// ...
/// end
/// ```
///
/// `select` lines list the chosen facility indices (instance order);
/// `assign i p` sends customer `i` to the `p`-th selected facility.
pub fn write_solution(mut w: impl Write, sol: &Solution) -> io::Result<()> {
    writeln!(w, "mcfs-solution v1")?;
    writeln!(w, "objective {}", sol.objective)?;
    for &j in &sol.facilities {
        writeln!(w, "select {j}")?;
    }
    for (i, &p) in sol.assignment.iter().enumerate() {
        writeln!(w, "assign {i} {p}")?;
    }
    writeln!(w, "end")?;
    Ok(())
}

/// Parse a solution written by [`write_solution`].
pub fn read_solution(r: impl BufRead) -> Result<Solution, ParseError> {
    let mut facilities = Vec::new();
    let mut assignment: Vec<(usize, u32)> = Vec::new();
    let mut objective: Option<u64> = None;
    let mut ended = false;
    for (i, line) in r.lines().enumerate() {
        let ln = i + 1;
        let line = line?;
        let p: Vec<&str> = line.split_whitespace().collect();
        match (ln, p.as_slice()) {
            (1, ["mcfs-solution", "v1"]) => {}
            (1, _) => return Err(bad(ln, format!("bad header {line:?}"))),
            (_, []) => {}
            (_, ["objective", v]) => objective = Some(num(ln, v)?),
            (_, ["select", j]) => facilities.push(num(ln, j)?),
            (_, ["assign", i, p_]) => assignment.push((num(ln, i)?, num(ln, p_)?)),
            (_, ["end"]) => {
                ended = true;
                break;
            }
            _ => return Err(bad(ln, format!("unknown directive {line:?}"))),
        }
    }
    if !ended {
        return Err(bad(0, "missing `end` terminator"));
    }
    let objective = objective.ok_or_else(|| bad(0, "missing `objective`"))?;
    // Assignments must form a dense 0..m prefix.
    let mut dense = vec![u32::MAX; assignment.len()];
    for (i, p) in assignment {
        if i >= dense.len() || dense[i] != u32::MAX {
            return Err(bad(
                0,
                format!("assignment for customer {i} missing or duplicated"),
            ));
        }
        dense[i] = p;
    }
    Ok(Solution {
        facilities,
        assignment: dense,
        objective,
    })
}

fn bad(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Malformed {
        line,
        message: message.into(),
    }
}

fn num<T: std::str::FromStr>(line: usize, s: &str) -> Result<T, ParseError> {
    s.parse()
        .map_err(|_| bad(line, format!("cannot parse {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let sol = Solution {
            facilities: vec![4, 9, 2],
            assignment: vec![0, 2, 1, 0],
            objective: 777,
        };
        let mut buf = Vec::new();
        write_solution(&mut buf, &sol).unwrap();
        let back = read_solution(buf.as_slice()).unwrap();
        assert_eq!(back, sol);
    }

    #[test]
    fn end_to_end_with_verification() {
        use mcfs::{McfsInstance, Solver, Wma};
        use mcfs_graph::GraphBuilder;
        let mut b = GraphBuilder::new(5);
        for i in 0..4 {
            b.add_edge(i, i + 1, 10);
        }
        let g = b.build();
        let inst = McfsInstance::builder(&g)
            .customers([0, 4])
            .facility(1, 1)
            .facility(3, 1)
            .k(2)
            .build()
            .unwrap();
        let sol = Wma::new().solve(&inst).unwrap();
        let mut buf = Vec::new();
        write_solution(&mut buf, &sol).unwrap();
        let back = read_solution(buf.as_slice()).unwrap();
        inst.verify(&back).unwrap();
    }

    #[test]
    fn rejects_garbage() {
        for (text, needle) in [
            ("nope\n", "bad header"),
            ("mcfs-solution v1\nwat\n", "unknown directive"),
            ("mcfs-solution v1\nobjective 1\n", "missing `end`"),
            ("mcfs-solution v1\nend\n", "missing `objective`"),
            (
                "mcfs-solution v1\nobjective 1\nassign 0 0\nassign 0 1\nend\n",
                "duplicated",
            ),
            (
                "mcfs-solution v1\nobjective 1\nassign 1 0\nend\n",
                "missing or duplicated",
            ),
        ] {
            let err = read_solution(text.as_bytes()).unwrap_err().to_string();
            assert!(err.contains(needle), "{text:?} => {err}");
        }
    }
}
