//! Checkpoints: an instance and its verified solution in one file.
//!
//! The dynamic re-solving engine (`mcfs::ReSolver`) is built around long
//! sessions — solve, edit, re-solve — and a session must survive a process
//! restart. A checkpoint archives the *current* (post-edit) instance
//! together with its last solution, so a restarted process can call
//! `ReSolver::from_solved` and regain the warm-start state without
//! re-solving from scratch:
//!
//! ```text
//! mcfs-checkpoint v1
//! mcfs-instance v1
//! ...
//! end
//! mcfs-solution v1
//! ...
//! end
//! end
//! ```
//!
//! The embedded blocks are the ordinary instance and solution formats,
//! delimited by their own `end` terminators; the outer `end` closes the
//! checkpoint. [`read_checkpoint`] *verifies* the pair on load — a
//! checkpoint whose solution does not verify against its instance is
//! rejected as malformed, never returned for the caller to trip over.

use std::io::{self, BufRead, Write};

use mcfs::{McfsInstance, Solution};

use crate::instance::{read_instance, write_instance, OwnedInstance, ParseError};
use crate::solution::{read_solution, write_solution};

/// Serialize an instance/solution pair as a checkpoint.
pub fn write_checkpoint(mut w: impl Write, inst: &McfsInstance, sol: &Solution) -> io::Result<()> {
    writeln!(w, "mcfs-checkpoint v1")?;
    write_instance(&mut w, inst)?;
    write_solution(&mut w, sol)?;
    writeln!(w, "end")?;
    Ok(())
}

/// Parse a checkpoint written by [`write_checkpoint`] and verify that the
/// solution actually solves the instance. Verification failure is a parse
/// error: a checkpoint is a claim ("this solution belongs to this
/// instance"), and a file that cannot back the claim is corrupt.
pub fn read_checkpoint(mut r: impl BufRead) -> Result<(OwnedInstance, Solution), ParseError> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Err(malformed(1, "empty file"));
    }
    if header.trim() != "mcfs-checkpoint v1" {
        return Err(malformed(1, format!("bad header {:?}", header.trim_end())));
    }
    let owned = read_instance(&mut r)?;
    let sol = read_solution(&mut r)?;
    let mut ended = false;
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        match line.trim() {
            "" => {}
            "end" => {
                ended = true;
                break;
            }
            other => return Err(malformed(0, format!("trailing content {other:?}"))),
        }
    }
    if !ended {
        return Err(malformed(0, "missing outer `end` terminator"));
    }
    let inst = owned
        .instance()
        .map_err(|e| malformed(0, format!("embedded instance invalid: {e}")))?;
    inst.verify(&sol)
        .map_err(|e| malformed(0, format!("checkpoint solution does not verify: {e:?}")))?;
    drop(inst);
    Ok((owned, sol))
}

fn malformed(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Malformed {
        line,
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfs::{ReSolver, Solver, Wma};
    use mcfs_graph::GraphBuilder;

    fn solved_pair() -> (OwnedInstance, Solution) {
        let mut b = GraphBuilder::new(6);
        for i in 0..5 {
            b.add_edge(i, i + 1, 10 + i as u64);
        }
        let g = b.build();
        let owned = OwnedInstance {
            graph: g,
            customers: vec![0, 2, 5, 3],
            facilities: vec![
                mcfs::Facility {
                    node: 1,
                    capacity: 2,
                },
                mcfs::Facility {
                    node: 4,
                    capacity: 3,
                },
            ],
            k: 2,
        };
        let sol = Wma::new().solve(&owned.instance().unwrap()).unwrap();
        (owned, sol)
    }

    #[test]
    fn round_trip_restores_a_warm_resolver() {
        let (owned, sol) = solved_pair();
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, &owned.instance().unwrap(), &sol).unwrap();
        let (back, back_sol) = read_checkpoint(buf.as_slice()).unwrap();
        assert_eq!(back_sol, sol);
        assert_eq!(back.customers, owned.customers);
        assert_eq!(back.facilities, owned.facilities);
        assert_eq!(back.k, owned.k);

        // The restored pair seeds a ReSolver whose next solve matches a
        // cold solve of the same instance.
        let inst = back.instance().unwrap();
        let mut rs = ReSolver::from_solved(&inst, Wma::new(), &back_sol).unwrap();
        rs.apply(&[mcfs::Edit::AddCustomer { node: 1 }]).unwrap();
        let run = rs.solve().unwrap();
        let cold = Wma::new().solve(&rs.instance()).unwrap();
        assert_eq!(run.solution.objective, cold.objective);
    }

    #[test]
    fn rejects_garbage_and_mismatched_pairs() {
        let (owned, sol) = solved_pair();
        let mut good = Vec::new();
        write_checkpoint(&mut good, &owned.instance().unwrap(), &sol).unwrap();
        let good = String::from_utf8(good).unwrap();

        // Bad outer header.
        let err = read_checkpoint("nope\n".as_bytes())
            .unwrap_err()
            .to_string();
        assert!(err.contains("bad header"), "{err}");
        // Truncated: missing the outer end.
        let cut = good.trim_end().trim_end_matches("end").to_string();
        let err = read_checkpoint(cut.as_bytes()).unwrap_err().to_string();
        assert!(err.contains("missing outer `end`"), "{err}");
        // Trailing junk after the solution block.
        let junk = good.trim_end().trim_end_matches("end").to_string() + "wat\nend\n";
        let err = read_checkpoint(junk.as_bytes()).unwrap_err().to_string();
        assert!(err.contains("trailing content"), "{err}");
        // A tampered objective must fail verification on load.
        let tampered = good.replace(
            &format!("objective {}", sol.objective),
            &format!("objective {}", sol.objective + 1),
        );
        let err = read_checkpoint(tampered.as_bytes())
            .unwrap_err()
            .to_string();
        assert!(err.contains("does not verify"), "{err}");
    }
}
