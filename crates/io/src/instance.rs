//! Reading and writing problem instances.

use std::io::{self, BufRead, Write};

use mcfs::{Facility, InstanceError, McfsInstance};
use mcfs_graph::{Graph, GraphBuilder, NodeId, Point};

/// An instance that owns its graph (unlike [`McfsInstance`], which borrows);
/// the natural shape for data loaded from disk.
#[derive(Clone, Debug)]
pub struct OwnedInstance {
    /// The network.
    pub graph: Graph,
    /// Customer locations.
    pub customers: Vec<NodeId>,
    /// Candidate facilities.
    pub facilities: Vec<Facility>,
    /// Selection budget.
    pub k: usize,
}

impl OwnedInstance {
    /// Borrow as a solvable [`McfsInstance`].
    pub fn instance(&self) -> Result<McfsInstance<'_>, InstanceError> {
        McfsInstance::builder(&self.graph)
            .customers(self.customers.iter().copied())
            .facilities(self.facilities.iter().copied())
            .k(self.k)
            .build()
    }
}

/// Why a file failed to parse.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural violation, with the 1-based line number and a message.
    Malformed {
        /// Line where the problem was detected.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::Malformed { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

fn malformed(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Malformed {
        line,
        message: message.into(),
    }
}

/// Hard sanity bound on the node count a file may declare. A tiny header
/// like `nodes 4000000000` would otherwise force a multi-gigabyte
/// allocation (or trip the graph builder's id-space assertion) before a
/// single node line is read — an easy way for malformed input to abort a
/// long-lived process. 16M nodes is ~80× the largest road network in the
/// paper while keeping the worst-case parse allocation modest.
pub const MAX_NODES: usize = 1 << 24;

/// Serialize an instance. The graph is written as directed arcs, so
/// directed and undirected inputs both round-trip exactly.
pub fn write_instance(mut w: impl Write, inst: &McfsInstance) -> io::Result<()> {
    let g = inst.graph();
    writeln!(w, "mcfs-instance v1")?;
    match g.coords() {
        Some(coords) => {
            writeln!(w, "nodes {} coords", g.num_nodes())?;
            for (v, p) in coords.iter().enumerate() {
                writeln!(w, "node {v} {:?} {:?}", p.x, p.y)?;
            }
        }
        None => writeln!(w, "nodes {}", g.num_nodes())?,
    }
    for v in g.nodes() {
        for (u, dist) in g.neighbors(v) {
            writeln!(w, "arc {v} {u} {dist}")?;
        }
    }
    for &c in inst.customers() {
        writeln!(w, "customer {c}")?;
    }
    for f in inst.facilities() {
        writeln!(w, "facility {} {}", f.node, f.capacity)?;
    }
    writeln!(w, "k {}", inst.k())?;
    writeln!(w, "end")?;
    Ok(())
}

/// Parse an instance written by [`write_instance`].
pub fn read_instance(r: impl BufRead) -> Result<OwnedInstance, ParseError> {
    let mut lines = r.lines().enumerate();
    let mut next = || -> Result<Option<(usize, String)>, ParseError> {
        match lines.next() {
            Some((i, l)) => Ok(Some((i + 1, l?))),
            None => Ok(None),
        }
    };

    let (ln, header) = next()?.ok_or_else(|| malformed(1, "empty file"))?;
    if header.trim() != "mcfs-instance v1" {
        return Err(malformed(ln, format!("bad header {header:?}")));
    }
    let (ln, nodes_line) = next()?.ok_or_else(|| malformed(2, "missing nodes line"))?;
    let parts: Vec<&str> = nodes_line.split_whitespace().collect();
    let (n, with_coords) = match parts.as_slice() {
        ["nodes", n] => (parse_num::<usize>(ln, n)?, false),
        ["nodes", n, "coords"] => (parse_num::<usize>(ln, n)?, true),
        _ => return Err(malformed(ln, format!("bad nodes line {nodes_line:?}"))),
    };
    if n > MAX_NODES {
        return Err(malformed(
            ln,
            format!("node count {n} exceeds the format bound {MAX_NODES}"),
        ));
    }

    let mut builder = if with_coords {
        let mut coords = vec![Point::new(0.0, 0.0); n];
        let mut seen = vec![false; n];
        for _ in 0..n {
            let (ln, line) = next()?.ok_or_else(|| malformed(0, "truncated node list"))?;
            let p: Vec<&str> = line.split_whitespace().collect();
            match p.as_slice() {
                ["node", v, x, y] => {
                    let v = parse_num::<usize>(ln, v)?;
                    if v >= n {
                        return Err(malformed(ln, format!("node id {v} out of range")));
                    }
                    if std::mem::replace(&mut seen[v], true) {
                        return Err(malformed(ln, format!("duplicate node {v}")));
                    }
                    coords[v] = Point::new(parse_num(ln, x)?, parse_num(ln, y)?);
                }
                _ => return Err(malformed(ln, format!("expected node line, got {line:?}"))),
            }
        }
        GraphBuilder::with_coords(coords)
    } else {
        GraphBuilder::new(n)
    };

    let mut customers = Vec::new();
    let mut facilities = Vec::new();
    let mut k: Option<usize> = None;
    let mut ended = false;
    while let Some((ln, line)) = next()? {
        let p: Vec<&str> = line.split_whitespace().collect();
        match p.as_slice() {
            [] => continue,
            ["arc", u, v, w] => {
                let (u, v) = (parse_num::<NodeId>(ln, u)?, parse_num::<NodeId>(ln, v)?);
                if (u as usize) >= n || (v as usize) >= n {
                    return Err(malformed(ln, "arc endpoint out of range"));
                }
                if u == v {
                    return Err(malformed(ln, "self-loop arc"));
                }
                builder.add_arc(u, v, parse_num(ln, w)?);
            }
            ["customer", c] => {
                let c = parse_num::<NodeId>(ln, c)?;
                if c as usize >= n {
                    return Err(malformed(ln, format!("customer node {c} out of range")));
                }
                customers.push(c);
            }
            ["facility", node, cap] => {
                let node = parse_num::<NodeId>(ln, node)?;
                if node as usize >= n {
                    return Err(malformed(ln, format!("facility node {node} out of range")));
                }
                facilities.push(Facility {
                    node,
                    capacity: parse_num(ln, cap)?,
                });
            }
            ["k", val] => k = Some(parse_num(ln, val)?),
            ["end"] => {
                ended = true;
                break;
            }
            _ => return Err(malformed(ln, format!("unknown directive {line:?}"))),
        }
    }
    if !ended {
        return Err(malformed(0, "missing `end` terminator (truncated file?)"));
    }
    let k = k.ok_or_else(|| malformed(0, "missing `k` directive"))?;
    Ok(OwnedInstance {
        graph: builder.build(),
        customers,
        facilities,
        k,
    })
}

fn parse_num<T: std::str::FromStr>(line: usize, s: &str) -> Result<T, ParseError> {
    s.parse()
        .map_err(|_| malformed(line, format!("cannot parse {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfs_graph::GraphBuilder;

    fn sample() -> (Graph, Vec<NodeId>, Vec<Facility>, usize) {
        let coords = vec![
            Point::new(0.5, 1.25),
            Point::new(10.0, -3.5),
            Point::new(2.0, 2.0),
            Point::new(7.75, 0.125),
        ];
        let mut b = GraphBuilder::with_coords(coords);
        b.add_edge(0, 1, 100);
        b.add_edge(1, 2, 50);
        b.add_arc(3, 0, 25); // a one-way street
        let g = b.build();
        (
            g,
            vec![0, 2, 2],
            vec![
                Facility {
                    node: 1,
                    capacity: 3,
                },
                Facility {
                    node: 3,
                    capacity: 1,
                },
            ],
            1,
        )
    }

    fn round_trip(
        g: &Graph,
        customers: &[NodeId],
        facilities: &[Facility],
        k: usize,
    ) -> OwnedInstance {
        let inst = McfsInstance::builder(g)
            .customers(customers.iter().copied())
            .facilities(facilities.iter().copied())
            .k(k)
            .build()
            .unwrap();
        let mut buf = Vec::new();
        write_instance(&mut buf, &inst).unwrap();
        read_instance(buf.as_slice()).unwrap()
    }

    #[test]
    fn round_trips_exactly() {
        let (g, customers, facilities, k) = sample();
        let back = round_trip(&g, &customers, &facilities, k);
        assert_eq!(back.graph.num_nodes(), g.num_nodes());
        assert_eq!(back.graph.num_arcs(), g.num_arcs());
        assert_eq!(back.graph.coords(), g.coords());
        for v in g.nodes() {
            let mut a: Vec<_> = g.neighbors(v).collect();
            let mut b: Vec<_> = back.graph.neighbors(v).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "adjacency of {v}");
        }
        assert_eq!(back.customers, customers);
        assert_eq!(back.facilities, facilities);
        assert_eq!(back.k, k);
        back.instance().unwrap();
    }

    #[test]
    fn no_coords_round_trip() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 7);
        b.add_edge(1, 2, 9);
        let g = b.build();
        let back = round_trip(
            &g,
            &[0],
            &[Facility {
                node: 2,
                capacity: 1,
            }],
            1,
        );
        assert!(back.graph.coords().is_none());
        assert_eq!(back.graph.num_arcs(), 4);
    }

    #[test]
    fn solving_a_loaded_instance() {
        use mcfs::{Solver, Wma};
        let (g, customers, facilities, k) = sample();
        let back = round_trip(&g, &customers, &facilities, k);
        let inst = back.instance().unwrap();
        let sol = Wma::new().solve(&inst).unwrap();
        inst.verify(&sol).unwrap();
    }

    #[test]
    fn rejects_garbage() {
        for (text, needle) in [
            ("", "empty"),
            ("mcfs-instance v2\n", "bad header"),
            ("mcfs-instance v1\nnodes x\n", "cannot parse"),
            (
                "mcfs-instance v1\nnodes 2\narc 0 5 1\nk 1\nend\n",
                "out of range",
            ),
            (
                "mcfs-instance v1\nnodes 2\narc 0 0 1\nk 1\nend\n",
                "self-loop",
            ),
            ("mcfs-instance v1\nnodes 2\nwat 1\n", "unknown directive"),
            (
                "mcfs-instance v1\nnodes 2\narc 0 1 1\nk 1\n",
                "missing `end`",
            ),
            ("mcfs-instance v1\nnodes 2\narc 0 1 1\nend\n", "missing `k`"),
            (
                "mcfs-instance v1\nnodes 2 coords\nnode 0 0.0 0.0\nnode 0 1.0 1.0\nk 1\nend\n",
                "duplicate node",
            ),
            // Resource-bomb headers must be a ParseError, not a panic or a
            // multi-gigabyte allocation (the server feeds client bytes here).
            (
                "mcfs-instance v1\nnodes 4000000000\nk 1\nend\n",
                "exceeds the format bound",
            ),
            (
                "mcfs-instance v1\nnodes 18446744073709551615 coords\nk 1\nend\n",
                "exceeds the format bound",
            ),
            // Out-of-range customers/facilities fail at their own line.
            (
                "mcfs-instance v1\nnodes 2\ncustomer 9\nk 1\nend\n",
                "customer node 9 out of range",
            ),
            (
                "mcfs-instance v1\nnodes 2\nfacility 5 1\nk 1\nend\n",
                "facility node 5 out of range",
            ),
        ] {
            let err = read_instance(text.as_bytes()).unwrap_err().to_string();
            assert!(err.contains(needle), "{text:?} => {err}");
        }
    }

    #[test]
    fn generated_city_round_trips() {
        use mcfs_gen::city::{generate_city, CitySpec, CityStyle};
        use mcfs_gen::customers::uniform_customers;
        let g = generate_city(&CitySpec {
            name: "IoCity",
            target_nodes: 800,
            style: CityStyle::Grid,
            avg_edge_len: 40.0,
            seed: 0x10,
        });
        let customers = uniform_customers(&g, 40, 1);
        let facilities: Vec<Facility> = g
            .nodes()
            .step_by(9)
            .map(|node| Facility { node, capacity: 4 })
            .collect();
        let back = round_trip(&g, &customers, &facilities, 12);
        assert_eq!(back.graph.num_arcs(), g.num_arcs());
        assert_eq!(back.customers, customers);
        // Solutions on original and reloaded instances agree exactly.
        use mcfs::{Solver, Wma};
        let orig = McfsInstance::builder(&g)
            .customers(customers.iter().copied())
            .facilities(facilities.iter().copied())
            .k(12)
            .build()
            .unwrap();
        let a = Wma::new().solve(&orig).unwrap();
        let b = Wma::new().solve(&back.instance().unwrap()).unwrap();
        assert_eq!(a, b, "round-trip must not perturb solver behaviour");
    }

    proptest::proptest! {
        /// Random instances round-trip exactly.
        #[test]
        fn random_round_trips(
            n in 2usize..16,
            edges in proptest::collection::vec((0u32..16, 0u32..16, 1u64..1000), 0..40),
            cust in proptest::collection::vec(0u32..16, 1..6),
            fac in proptest::collection::vec((0u32..16, 1u32..9), 1..6),
            with_coords in proptest::bool::ANY,
        ) {
            let mut b = if with_coords {
                GraphBuilder::with_coords(
                    (0..n).map(|i| Point::new(i as f64 * 1.5, -(i as f64))).collect())
            } else {
                GraphBuilder::new(n)
            };
            for (u, v, w) in edges {
                let (u, v) = (u % n as u32, v % n as u32);
                if u != v {
                    b.add_arc(u, v, w);
                }
            }
            let g = b.build();
            let customers: Vec<NodeId> = cust.iter().map(|&c| c % n as u32).collect();
            let facilities: Vec<Facility> = fac
                .iter()
                .map(|&(v, c)| Facility { node: v % n as u32, capacity: c })
                .collect();
            let back = round_trip(&g, &customers, &facilities, 1);
            proptest::prop_assert_eq!(back.graph.num_arcs(), g.num_arcs());
            proptest::prop_assert_eq!(back.graph.coords(), g.coords());
            proptest::prop_assert_eq!(&back.customers, &customers);
            proptest::prop_assert_eq!(&back.facilities, &facilities);
        }
    }

    #[test]
    fn float_coordinates_survive() {
        let coords = vec![
            Point::new(0.1 + 0.2, 1e-300),
            Point::new(-0.0, 12345.678901234567),
        ];
        let mut b = GraphBuilder::with_coords(coords.clone());
        b.add_edge(0, 1, 1);
        let g = b.build();
        let back = round_trip(
            &g,
            &[0],
            &[Facility {
                node: 1,
                capacity: 1,
            }],
            1,
        );
        let rc = back.graph.coords().unwrap();
        assert_eq!(rc[0].x, coords[0].x);
        assert_eq!(rc[0].y, coords[0].y);
        assert_eq!(rc[1].y, coords[1].y);
    }
}
