//! Plain-text persistence for MCFS data — networks, problem instances, and
//! solutions.
//!
//! The paper's pipeline starts from files (OpenStreetMap extracts, Yelp
//! dumps, municipal CSVs); a deployable reproduction needs the same
//! affordance: generate a workload once, save it, re-solve it many times,
//! and archive solutions next to the instances that produced them. The
//! format is a line-oriented, human-inspectable text file:
//!
//! ```text
//! mcfs-instance v1
//! nodes 4 coords
//! node 0 0.0 0.0
//! ...
//! arc 0 1 100
//! customer 0
//! facility 1 2
//! k 1
//! end
//! ```
//!
//! Deterministic output (fields in fixed order), exact round-trips
//! (coordinates use Rust's shortest-round-trip float formatting), and
//! strict parsing (unknown directives, wrong counts, and missing `end` are
//! errors — silent truncation is how benchmark data rots).
//!
//! Every read path is panic-free on malformed input: all structural
//! violations — including resource-bomb headers like `nodes 4000000000`
//! and out-of-range node references — surface as line-numbered
//! [`ParseError`]s, never as `unwrap`/assert aborts. The serving layer
//! (`mcfs-server`) feeds raw client bytes straight into these parsers, so a
//! panic here would take down every session in the process.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod instance;
pub mod solution;

pub use checkpoint::{read_checkpoint, write_checkpoint};
pub use instance::{read_instance, write_instance, OwnedInstance, ParseError, MAX_NODES};
pub use solution::{read_solution, write_solution};
