//! Property suite for the observability substrate: histogram bucketing
//! invariants, byte-stable Prometheus rendering, wire-line round-trips,
//! and well-nestedness of concurrently recorded span trees.
//!
//! Run with `PROPTEST_CASES=256` (the CI `obs-suites` job does) for the
//! deeper sweep.

use proptest::prelude::*;
use std::borrow::Cow;

use mcfs_obs::{
    span, span_from_wire_line, span_to_wire_line, spans_for, to_chrome_trace, verify_nesting,
    Registry, SpanRecord, TraceGuard,
};

/// The bucket index `Histogram::observe` must pick: 0 for 0, else
/// `floor(log2(v)) + 1`, clamped into the catch-all.
fn expected_bucket(value: u64, buckets: usize) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(buckets - 1)
    }
}

proptest! {
    /// Sum/count/bucket-total invariants hold for any observation set, and
    /// every observation lands in its log2 bucket.
    #[test]
    fn histogram_buckets_partition_observations(
        values in proptest::collection::vec(0u64..1u64 << 40, 0..64),
        buckets in 2usize..32,
    ) {
        let reg = Registry::new();
        let h = reg.histogram_log2("mcfs_prop_hist", "prop", buckets);
        let mut expected = vec![0u64; buckets];
        for &v in &values {
            h.observe(v);
            expected[expected_bucket(v, buckets)] += 1;
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        let by_bucket: Vec<u64> = (0..buckets).map(|i| h.bucket_count(i)).collect();
        prop_assert_eq!(by_bucket, expected);
    }

    /// Rendering is a pure read: byte-identical across calls, and the
    /// cumulative histogram lines are monotone and end at the count.
    #[test]
    fn prometheus_rendering_is_stable_and_cumulative(
        counts in proptest::collection::vec(0u64..100, 1..6),
        observations in proptest::collection::vec(0u64..1u64 << 20, 0..32),
    ) {
        let reg = Registry::new();
        for (i, &n) in counts.iter().enumerate() {
            reg.counter_with("mcfs_prop_total", "prop", &[("cell", &format!("c{i}"))])
                .add(n);
        }
        let h = reg.histogram_log2("mcfs_prop_lat", "prop", 8);
        for &v in &observations {
            h.observe(v);
        }
        let first = reg.render_prometheus();
        prop_assert_eq!(&first, &reg.render_prometheus());

        for (i, &n) in counts.iter().enumerate() {
            let needle = format!("mcfs_prop_total{{cell=\"c{i}\"}} {n}\n");
            prop_assert!(first.contains(&needle), "missing sample line {:?}", needle);
        }
        // Cumulative buckets never decrease and the +Inf line equals count.
        let mut last = 0u64;
        for line in first.lines().filter(|l| l.starts_with("mcfs_prop_lat_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            prop_assert!(v >= last, "cumulative bucket went down in {line:?}");
            last = v;
        }
        prop_assert_eq!(last, observations.len() as u64);
        let count_line = format!("mcfs_prop_lat_count {}\n", observations.len());
        prop_assert!(first.contains(&count_line), "missing {:?}", count_line);
    }

    /// Any span record with a whitespace-free name survives the positional
    /// wire line unchanged.
    #[test]
    fn wire_lines_round_trip(
        trace in 1u64..u64::MAX,
        id in 1u64..u64::MAX,
        parent in 0u64..u64::MAX,
        thread in 1u64..1000,
        start_ns in 0u64..u64::MAX,
        dur_ns in 0u64..u64::MAX,
        name_picks in proptest::collection::vec(0usize..64, 1..16),
    ) {
        const NAME_CHARS: &[u8] = b"abcxyz019_.";
        let name: String = name_picks
            .iter()
            .map(|&i| NAME_CHARS[i % NAME_CHARS.len()] as char)
            .collect();
        let record = SpanRecord {
            trace, id, parent, thread, start_ns, dur_ns,
            name: Cow::Owned(name),
        };
        let line = span_to_wire_line(&record);
        prop_assert_eq!(span_from_wire_line(&line), Some(record));
    }

    /// Concurrent threads each tracing a random open/close program yield
    /// disjoint traces whose span trees are well-nested.
    #[test]
    fn concurrent_span_trees_are_well_nested(
        programs in proptest::collection::vec(
            proptest::collection::vec(1usize..5, 1..8), 1..4),
    ) {
        static NAMES: [&str; 5] = ["p.a", "p.b", "p.c", "p.d", "p.e"];
        let handles: Vec<_> = programs
            .into_iter()
            .map(|depths| {
                std::thread::spawn(move || {
                    let guard = TraceGuard::enter(0, 0);
                    let trace = guard.trace();
                    let mut opened = 0usize;
                    for depth in depths {
                        // Open a nest `depth` deep, close it innermost
                        // first (a Vec drops front-to-back, which would
                        // end the outer span before its children).
                        let mut stack = Vec::new();
                        for d in 0..depth {
                            stack.push(span(NAMES[d % NAMES.len()]));
                            opened += 1;
                        }
                        while stack.pop().is_some() {}
                    }
                    drop(guard);
                    (trace, opened)
                })
            })
            .collect();
        for h in handles {
            let (trace, opened) = h.join().unwrap();
            let spans = spans_for(trace);
            prop_assert_eq!(spans.len(), opened);
            prop_assert!(spans.iter().all(|s| s.trace == trace));
            prop_assert!(verify_nesting(&spans).is_ok());
            // The exporter accepts whatever the ring produced.
            let json = to_chrome_trace(&spans);
            prop_assert!(
                json.starts_with("{\"traceEvents\":[") && json.ends_with("]}"),
                "malformed chrome trace document"
            );
        }
    }
}
