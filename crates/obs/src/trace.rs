//! The span tracing core: thread-local span stacks, monotonic timestamps,
//! and a bounded global ring buffer of finished spans.
//!
//! # Model
//!
//! A *trace* is a set of spans sharing a trace id — one served request, one
//! solver run. A thread *enters* a trace with [`TraceGuard::enter`]; while
//! the guard lives, every [`span`] opened on that thread records into the
//! trace, parented to the innermost open span (a thread-local stack gives
//! well-nesting by construction). Dropping a span guard timestamps its end
//! and pushes the finished [`SpanRecord`] into the ring.
//!
//! # Cost when disabled
//!
//! [`span`] first reads one relaxed [`AtomicBool`] that is only set while
//! some thread is inside a trace (or force mode is on). When it is clear —
//! the overwhelmingly common case for untraced traffic — the call returns
//! an inert guard without reading the clock, allocating, or touching a
//! thread-local. The bench group `obs_tracing` and the overhead test keep
//! this path honest.
//!
//! # Cross-thread spans
//!
//! Work that starts on one thread and finishes on another (a queued request
//! between its connection thread and its worker) cannot use the RAII guard;
//! [`record_manual`] records a span from explicit timestamps, and
//! [`alloc_span_id`] pre-allocates an id so children can be parented to a
//! span that is recorded later.

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default bound on retained finished spans.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// One finished span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to (never 0).
    pub trace: u64,
    /// Span id, unique within the process (never 0).
    pub id: u64,
    /// Parent span id within the same trace; 0 = a trace root.
    pub parent: u64,
    /// Small dense id of the recording thread.
    pub thread: u64,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Dot-separated span name (e.g. `server.execute`); contains no spaces,
    /// so it can ride last on a space-separated wire line.
    pub name: Cow<'static, str>,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static FORCE: AtomicBool = AtomicBool::new(false);
static ACTIVE_GUARDS: AtomicUsize = AtomicUsize::new(0);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);

fn ring() -> &'static Mutex<VecDeque<SpanRecord>> {
    static RING: OnceLock<Mutex<VecDeque<SpanRecord>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::new()))
}

thread_local! {
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
    static CURRENT_PARENT: Cell<u64> = const { Cell::new(0) };
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

fn rearm() {
    ARMED.store(
        FORCE.load(Relaxed) || ACTIVE_GUARDS.load(Relaxed) > 0,
        Relaxed,
    );
}

/// Trace every span regardless of [`TraceGuard`]s — spans opened outside a
/// trace get a freshly minted trace id each. Meant for benches and tests.
pub fn set_force(on: bool) {
    FORCE.store(on, Relaxed);
    rearm();
}

/// Nanoseconds since the process trace epoch (first call wins).
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// Mint a fresh trace id (never 0).
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Relaxed)
}

/// Pre-allocate a span id (never 0) for a later [`record_manual`] call, so
/// children can name their parent before the parent is recorded.
pub fn alloc_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Relaxed)
}

/// The trace id this thread is currently inside (0 = none).
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(Cell::get)
}

/// Small dense id of the calling thread, assigned on first use.
pub fn thread_id() -> u64 {
    THREAD_ID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_THREAD_ID.fetch_add(1, Relaxed);
            t.set(id);
        }
        id
    })
}

fn push_record(record: SpanRecord) {
    let cap = RING_CAPACITY.load(Relaxed);
    let mut ring = ring().lock().unwrap();
    while ring.len() >= cap.max(1) {
        ring.pop_front();
    }
    ring.push_back(record);
}

/// Bound the ring of retained finished spans (oldest are dropped first).
pub fn set_ring_capacity(capacity: usize) {
    RING_CAPACITY.store(capacity.max(1), Relaxed);
}

/// Drop every retained span (test isolation).
pub fn clear_spans() {
    ring().lock().unwrap().clear();
}

/// All retained spans of `trace`, ordered by start time (ties: by id, which
/// respects creation order within a thread).
pub fn spans_for(trace: u64) -> Vec<SpanRecord> {
    let mut spans: Vec<SpanRecord> = ring()
        .lock()
        .unwrap()
        .iter()
        .filter(|s| s.trace == trace)
        .cloned()
        .collect();
    spans.sort_by_key(|s| (s.start_ns, s.id));
    spans
}

/// The most recently finished `n` spans across all traces (oldest first).
pub fn last_spans(n: usize) -> Vec<SpanRecord> {
    let ring = ring().lock().unwrap();
    ring.iter()
        .skip(ring.len().saturating_sub(n))
        .cloned()
        .collect()
}

/// Record a span from explicit timestamps (cross-thread lifecycles). Pass
/// `id: None` to allocate one; returns the span's id.
pub fn record_manual(
    trace: u64,
    name: &'static str,
    parent: u64,
    id: Option<u64>,
    start_ns: u64,
    end_ns: u64,
) -> u64 {
    let id = id.unwrap_or_else(alloc_span_id);
    push_record(SpanRecord {
        trace,
        id,
        parent,
        thread: thread_id(),
        start_ns,
        dur_ns: end_ns.saturating_sub(start_ns),
        name: Cow::Borrowed(name),
    });
    id
}

/// RAII scope that routes this thread's spans into a trace.
pub struct TraceGuard {
    trace: u64,
    prev_trace: u64,
    prev_parent: u64,
}

impl TraceGuard {
    /// Enter `trace` (0 mints a fresh id) with spans parented to `parent`
    /// (0 = trace root). Returns the guard; read the resolved id off it.
    pub fn enter(trace: u64, parent: u64) -> TraceGuard {
        let trace = if trace == 0 { next_trace_id() } else { trace };
        let prev_trace = CURRENT_TRACE.with(|t| t.replace(trace));
        let prev_parent = CURRENT_PARENT.with(|p| p.replace(parent));
        ACTIVE_GUARDS.fetch_add(1, Relaxed);
        rearm();
        TraceGuard {
            trace,
            prev_trace,
            prev_parent,
        }
    }

    /// The trace id this guard routes spans into.
    pub fn trace(&self) -> u64 {
        self.trace
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|t| t.set(self.prev_trace));
        CURRENT_PARENT.with(|p| p.set(self.prev_parent));
        ACTIVE_GUARDS.fetch_sub(1, Relaxed);
        rearm();
    }
}

struct SpanActive {
    trace: u64,
    id: u64,
    prev_parent: u64,
    start_ns: u64,
    name: &'static str,
}

/// An open span; dropping it records the [`SpanRecord`]. Inert (a no-op)
/// when the thread is not inside a trace.
pub struct Span(Option<SpanActive>);

impl Span {
    /// The span's id, or 0 when inert.
    pub fn id(&self) -> u64 {
        self.0.as_ref().map_or(0, |s| s.id)
    }
}

/// Open a span named `name` on the current thread. See the module docs for
/// the enablement rules and the disabled-path cost.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !ARMED.load(Relaxed) {
        return Span(None);
    }
    span_slow(name)
}

#[cold]
fn span_slow(name: &'static str) -> Span {
    let mut trace = CURRENT_TRACE.with(Cell::get);
    if trace == 0 {
        if !FORCE.load(Relaxed) {
            return Span(None);
        }
        // Force mode: orphan spans each get their own trace so they remain
        // queryable; they stay roots (parent 0).
        trace = next_trace_id();
    }
    let id = alloc_span_id();
    let prev_parent = CURRENT_PARENT.with(|p| p.replace(id));
    Span(Some(SpanActive {
        trace,
        id,
        prev_parent,
        start_ns: now_ns(),
        name,
    }))
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        CURRENT_PARENT.with(|p| p.set(active.prev_parent));
        let end = now_ns();
        push_record(SpanRecord {
            trace: active.trace,
            id: active.id,
            parent: active.prev_parent,
            thread: thread_id(),
            start_ns: active.start_ns,
            dur_ns: end.saturating_sub(active.start_ns),
            name: Cow::Borrowed(active.name),
        });
    }
}

/// Check that `spans` form well-nested trees: every non-root parent exists
/// in the set, belongs to the same trace, and its time interval encloses
/// the child's (manual cross-thread spans get a small slack because their
/// endpoints come from different `now_ns` calls).
pub fn verify_nesting(spans: &[SpanRecord]) -> Result<(), String> {
    use std::collections::HashMap;
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    for s in spans {
        if s.parent == 0 {
            continue;
        }
        let parent = by_id
            .get(&s.parent)
            .ok_or_else(|| format!("span {} ({}) has unknown parent {}", s.id, s.name, s.parent))?;
        if parent.trace != s.trace {
            return Err(format!(
                "span {} ({}) in trace {} has parent {} in trace {}",
                s.id, s.name, s.trace, parent.id, parent.trace
            ));
        }
        let (ps, pe) = (parent.start_ns, parent.start_ns + parent.dur_ns);
        let (cs, ce) = (s.start_ns, s.start_ns + s.dur_ns);
        if cs < ps || ce > pe {
            return Err(format!(
                "span {} ({}) [{cs}, {ce}] escapes parent {} ({}) [{ps}, {pe}]",
                s.id, s.name, parent.id, parent.name
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ring and its capacity are process-global; tests that read or
    /// resize them serialize here so the parallel test harness cannot
    /// interleave an eviction into another test's assertions.
    static RING_TESTS: Mutex<()> = Mutex::new(());

    fn ring_lock() -> std::sync::MutexGuard<'static, ()> {
        RING_TESTS.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn spans_outside_a_trace_are_inert() {
        let _serial = ring_lock();
        let before = last_spans(usize::MAX).len();
        {
            let s = span("inert.scope");
            assert_eq!(s.id(), 0);
        }
        assert_eq!(last_spans(usize::MAX).len(), before);
    }

    #[test]
    fn nested_spans_record_parentage_and_enclosure() {
        let _serial = ring_lock();
        let guard = TraceGuard::enter(0, 0);
        let trace = guard.trace();
        {
            let _outer = span("t.outer");
            let _inner = span("t.inner");
        }
        drop(guard);
        let spans = spans_for(trace);
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.name == "t.outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "t.inner").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        verify_nesting(&spans).unwrap();
        // After the guard dropped, the thread is out of the trace.
        assert_eq!(current_trace(), 0);
        assert_eq!(span("t.after").id(), 0);
    }

    #[test]
    fn manual_records_compose_with_preallocated_parents() {
        let _serial = ring_lock();
        let trace = next_trace_id();
        let root = alloc_span_id();
        let t0 = now_ns();
        let child = record_manual(trace, "m.child", root, None, t0 + 10, t0 + 20);
        record_manual(trace, "m.root", 0, Some(root), t0, t0 + 100);
        let spans = spans_for(trace);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "m.root");
        assert_eq!(spans[1].id, child);
        verify_nesting(&spans).unwrap();
    }

    #[test]
    fn concurrent_traces_stay_disjoint() {
        let _serial = ring_lock();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let guard = TraceGuard::enter(0, 0);
                    let trace = guard.trace();
                    for _ in 0..8 {
                        let _a = span("p.outer");
                        let _b = span("p.inner");
                    }
                    drop(guard);
                    (i, trace)
                })
            })
            .collect();
        for h in handles {
            let (_, trace) = h.join().unwrap();
            let spans = spans_for(trace);
            assert_eq!(spans.len(), 16);
            assert!(spans.iter().all(|s| s.trace == trace));
            verify_nesting(&spans).unwrap();
        }
    }

    #[test]
    fn ring_capacity_bounds_retention() {
        let _serial = ring_lock();
        let guard = TraceGuard::enter(0, 0);
        let trace = guard.trace();
        set_ring_capacity(8);
        for _ in 0..32 {
            let _s = span("cap.tick");
        }
        drop(guard);
        assert!(spans_for(trace).len() <= 8);
        set_ring_capacity(DEFAULT_RING_CAPACITY);
    }

    #[test]
    fn verify_nesting_rejects_escapes() {
        let mk = |id, parent, start, dur| SpanRecord {
            trace: 1,
            id,
            parent,
            thread: 1,
            start_ns: start,
            dur_ns: dur,
            name: Cow::Borrowed("x"),
        };
        assert!(verify_nesting(&[mk(1, 0, 0, 100), mk(2, 1, 50, 20)]).is_ok());
        assert!(verify_nesting(&[mk(1, 0, 0, 100), mk(2, 1, 90, 20)]).is_err());
        assert!(verify_nesting(&[mk(2, 7, 0, 10)]).is_err());
    }
}
