//! Span exporters: Chrome trace-event JSON (loadable in `about://tracing`
//! and Perfetto), JSONL for log shipping, and the one-line wire shape the
//! `TRACE` verb carries.
//!
//! The wire line is deliberately positional —
//!
//! ```text
//! <trace> <id> <parent> <thread> <start_ns> <dur_ns> <name>
//! ```
//!
//! — with the name last, so the protocol layer needs no quoting (span
//! names contain no whitespace by construction).

use std::borrow::Cow;

use crate::trace::SpanRecord;

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with nanosecond remainder, as Chrome's `ts`/`dur` expect.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Render spans as a Chrome trace-event JSON document (complete `"X"`
/// events inside a `traceEvents` array). Load the output in Perfetto or
/// `about://tracing` to see the request waterfall.
pub fn to_chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"mcfs\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"trace\":{},\"span\":{},\"parent\":{}}}}}",
            escape_json(&s.name),
            us(s.start_ns),
            us(s.dur_ns),
            s.thread,
            s.trace,
            s.id,
            s.parent,
        ));
    }
    out.push_str("]}");
    out
}

/// Render spans as JSONL: one flat JSON object per line.
pub fn to_jsonl(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&format!(
            "{{\"trace\":{},\"id\":{},\"parent\":{},\"thread\":{},\
             \"start_ns\":{},\"dur_ns\":{},\"name\":\"{}\"}}\n",
            s.trace,
            s.id,
            s.parent,
            s.thread,
            s.start_ns,
            s.dur_ns,
            escape_json(&s.name)
        ));
    }
    out
}

/// Render one span as the positional wire line the `TRACE` verb returns.
pub fn span_to_wire_line(s: &SpanRecord) -> String {
    format!(
        "{} {} {} {} {} {} {}",
        s.trace, s.id, s.parent, s.thread, s.start_ns, s.dur_ns, s.name
    )
}

/// Parse a [`span_to_wire_line`] line back into a record.
pub fn span_from_wire_line(line: &str) -> Option<SpanRecord> {
    let mut it = line.split_whitespace();
    let trace = it.next()?.parse().ok()?;
    let id = it.next()?.parse().ok()?;
    let parent = it.next()?.parse().ok()?;
    let thread = it.next()?.parse().ok()?;
    let start_ns = it.next()?.parse().ok()?;
    let dur_ns = it.next()?.parse().ok()?;
    let name = it.next()?.to_owned();
    if it.next().is_some() {
        return None;
    }
    Some(SpanRecord {
        trace,
        id,
        parent,
        thread,
        start_ns,
        dur_ns,
        name: Cow::Owned(name),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                trace: 3,
                id: 10,
                parent: 0,
                thread: 1,
                start_ns: 1_500,
                dur_ns: 2_000_250,
                name: Cow::Borrowed("server.execute"),
            },
            SpanRecord {
                trace: 3,
                id: 11,
                parent: 10,
                thread: 1,
                start_ns: 2_000,
                dur_ns: 900,
                name: Cow::Borrowed("resolve.solve"),
            },
        ]
    }

    #[test]
    fn chrome_trace_has_complete_events_in_microseconds() {
        let json = to_chrome_trace(&sample());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"server.execute\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2000.250"));
        assert!(json.contains("\"parent\":10"));
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let text = to_jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"trace\":3,\"id\":10,"));
        assert!(lines[1].contains("\"name\":\"resolve.solve\""));
    }

    #[test]
    fn wire_line_round_trips() {
        for s in sample() {
            let line = span_to_wire_line(&s);
            let back = span_from_wire_line(&line).unwrap();
            assert_eq!(back, s);
        }
        assert!(span_from_wire_line("1 2 3").is_none());
        assert!(span_from_wire_line("1 2 3 4 5 6 name extra").is_none());
        assert!(span_from_wire_line("x 2 3 4 5 6 name").is_none());
    }
}
