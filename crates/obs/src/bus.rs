//! The live event bus: bounded broadcast of solver and server progress.
//!
//! # Model
//!
//! Hot paths *publish* [`Event`]s; interested parties *subscribe* and drain
//! them. Every event is stamped with a process-wide sequence number and a
//! *scope* — the session-analog of a trace id: a server worker enters a
//! [`ScopeGuard`] for the session it is executing, and every event the
//! solver publishes on that thread inherits the session's scope, so a
//! `WATCH`ed connection can filter the firehose down to one session.
//!
//! # Backpressure
//!
//! Each subscriber owns a bounded ring. When a slow consumer falls behind,
//! the *oldest* events are dropped (a dashboard wants the freshest state)
//! and a per-subscriber drop counter advances; the next [`Subscriber::poll`]
//! reports how many events were lost since the previous drain. Publishers
//! never block on a consumer and never allocate on behalf of one beyond the
//! ring bound.
//!
//! # Cost when nobody subscribes
//!
//! [`publish`] — and the [`bus_enabled`] pre-check emission sites use to
//! skip building the event at all — is one relaxed [`AtomicBool`] load
//! while the subscriber list is empty, mirroring the disabled-tracing
//! discipline of [`crate::trace::span`]. The `obs_tracing` bench group and
//! `tests/obs_overhead.rs` keep this path honest.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Default bound on a subscriber's ring of undelivered events.
pub const DEFAULT_SUBSCRIBER_CAPACITY: usize = 1024;

/// Whether a [`Event::Phase`] marks the beginning or the end of a phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseState {
    /// The phase just started.
    Start,
    /// The phase just finished.
    End,
}

impl PhaseState {
    /// Stable wire token (`start` / `end`).
    pub fn token(self) -> &'static str {
        match self {
            PhaseState::Start => "start",
            PhaseState::End => "end",
        }
    }

    /// Parse a wire token produced by [`PhaseState::token`].
    pub fn from_token(token: &str) -> Option<PhaseState> {
        match token {
            "start" => Some(PhaseState::Start),
            "end" => Some(PhaseState::End),
            _ => None,
        }
    }
}

/// One progress event. Every payload field is numeric or a fixed token, so
/// events serialize onto space-separated `k=v` wire lines without quoting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// One solver main-loop iteration; mirrors the fields of
    /// `IterationStats` so a live consumer sees exactly what the post-hoc
    /// stats record.
    SolverIteration {
        /// Which solver loop published (`wma`, `wma-naive`).
        solver: &'static str,
        /// 1-based iteration number.
        iteration: u64,
        /// Customers covered by the tentative selection this iteration.
        covered: u64,
        /// Total customers in the instance.
        total: u64,
        /// Wall time of the matching phase, microseconds.
        matching_us: u64,
        /// Wall time of the set-cover check, microseconds.
        cover_us: u64,
        /// Total demand requested this iteration.
        demand: u64,
        /// Edges materialized in the bipartite graph so far.
        edges: u64,
    },
    /// A named phase started or finished (`resolve.selection`,
    /// `resolve.assignment`, `uf.attempt`, ...).
    Phase {
        /// Dot-separated phase name; contains no whitespace.
        name: &'static str,
        /// Whether the phase started or ended.
        state: PhaseState,
    },
    /// A re-solve finished, with its warm/cold outcome and objective.
    ResolveDone {
        /// Whether the warm path (dual certificate held) was taken.
        warm: bool,
        /// Objective value of the resulting assignment.
        objective: u64,
    },
    /// A session's outstanding-request queue depth changed.
    QueueDepth {
        /// Requests queued (admitted, not yet replied) for the session.
        depth: u64,
    },
    /// Matching substrate progress: cumulative augmenting paths committed.
    Augmentations {
        /// Total augmentations since the matcher was built.
        total: u64,
    },
}

impl Event {
    /// Stable wire token for the event kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SolverIteration { .. } => "iter",
            Event::Phase { .. } => "phase",
            Event::ResolveDone { .. } => "resolve",
            Event::QueueDepth { .. } => "queue",
            Event::Augmentations { .. } => "augment",
        }
    }

    /// Payload as ordered `(key, value)` pairs; values are wire-safe (no
    /// whitespace). The inverse of [`Event::from_kvs`].
    pub fn to_kvs(&self) -> Vec<(&'static str, String)> {
        match self {
            Event::SolverIteration {
                solver,
                iteration,
                covered,
                total,
                matching_us,
                cover_us,
                demand,
                edges,
            } => vec![
                ("solver", (*solver).to_string()),
                ("iteration", iteration.to_string()),
                ("covered", covered.to_string()),
                ("total", total.to_string()),
                ("matching_us", matching_us.to_string()),
                ("cover_us", cover_us.to_string()),
                ("demand", demand.to_string()),
                ("edges", edges.to_string()),
            ],
            Event::Phase { name, state } => vec![
                ("name", (*name).to_string()),
                ("state", state.token().to_string()),
            ],
            Event::ResolveDone { warm, objective } => vec![
                ("warm", u64::from(*warm).to_string()),
                ("objective", objective.to_string()),
            ],
            Event::QueueDepth { depth } => vec![("depth", depth.to_string())],
            Event::Augmentations { total } => vec![("total", total.to_string())],
        }
    }

    /// Rebuild an event from its kind token and payload pairs. Unknown
    /// kinds, missing keys, or unparsable values yield `None`; extra keys
    /// are ignored for forward compatibility. Dynamic string fields
    /// (`solver`, `name`) are interned against the known emission-site
    /// vocabulary; an unknown token maps to a stable `"other"` so decoding
    /// stays total over `&'static str` fields.
    pub fn from_kvs(kind: &str, kvs: &[(String, String)]) -> Option<Event> {
        fn get<'a>(kvs: &'a [(String, String)], key: &str) -> Option<&'a str> {
            kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
        }
        fn num(kvs: &[(String, String)], key: &str) -> Option<u64> {
            get(kvs, key)?.parse().ok()
        }
        match kind {
            "iter" => Some(Event::SolverIteration {
                solver: intern(get(kvs, "solver")?),
                iteration: num(kvs, "iteration")?,
                covered: num(kvs, "covered")?,
                total: num(kvs, "total")?,
                matching_us: num(kvs, "matching_us")?,
                cover_us: num(kvs, "cover_us")?,
                demand: num(kvs, "demand")?,
                edges: num(kvs, "edges")?,
            }),
            "phase" => Some(Event::Phase {
                name: intern(get(kvs, "name")?),
                state: PhaseState::from_token(get(kvs, "state")?)?,
            }),
            "resolve" => Some(Event::ResolveDone {
                warm: match num(kvs, "warm")? {
                    0 => false,
                    1 => true,
                    _ => return None,
                },
                objective: num(kvs, "objective")?,
            }),
            "queue" => Some(Event::QueueDepth {
                depth: num(kvs, "depth")?,
            }),
            "augment" => Some(Event::Augmentations {
                total: num(kvs, "total")?,
            }),
            _ => None,
        }
    }
}

/// The vocabulary of `&'static str` tokens emission sites use; decoding
/// maps wire strings back onto it (see [`Event::from_kvs`]).
const TOKENS: &[&str] = &[
    "wma",
    "wma-naive",
    "uf.attempt",
    "resolve.selection",
    "resolve.assignment",
];

fn intern(s: &str) -> &'static str {
    TOKENS.iter().find(|t| **t == s).copied().unwrap_or("other")
}

/// One published event with its bus stamps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Process-wide publish sequence number (never 0, strictly increasing
    /// across all scopes).
    pub seq: u64,
    /// Scope the publishing thread was inside (0 = unscoped).
    pub scope: u64,
    /// Publish time, nanoseconds since the trace epoch
    /// ([`crate::trace::now_ns`]).
    pub ts_ns: u64,
    /// The event payload.
    pub event: Event,
}

static BUS_ARMED: AtomicBool = AtomicBool::new(false);
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);
static NEXT_SCOPE: AtomicU64 = AtomicU64::new(1);
static DROPPED_TOTAL: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static CURRENT_SCOPE: Cell<u64> = const { Cell::new(0) };
}

struct SubscriberState {
    ring: VecDeque<EventRecord>,
    /// Events dropped since the last drain (reported, then reset).
    dropped_pending: u64,
}

struct SubscriberShared {
    /// Only events with this scope are enqueued; `None` = all scopes.
    filter: Option<u64>,
    capacity: usize,
    state: Mutex<SubscriberState>,
    wakeup: Condvar,
    dropped_total: AtomicU64,
}

fn subscribers() -> &'static Mutex<Vec<Arc<SubscriberShared>>> {
    static SUBS: OnceLock<Mutex<Vec<Arc<SubscriberShared>>>> = OnceLock::new();
    SUBS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Whether at least one subscriber is live. One relaxed atomic load:
/// emission sites check this before assembling an [`Event`] so the
/// zero-subscriber cost stays within the disabled-tracing budget.
#[inline]
pub fn bus_enabled() -> bool {
    BUS_ARMED.load(Relaxed)
}

/// Mint a fresh scope id (never 0). The server mints one per session.
pub fn next_scope_id() -> u64 {
    NEXT_SCOPE.fetch_add(1, Relaxed)
}

/// The scope the calling thread is currently inside (0 = none).
pub fn current_scope() -> u64 {
    CURRENT_SCOPE.with(Cell::get)
}

/// Total events dropped across all subscribers since process start.
pub fn dropped_total() -> u64 {
    DROPPED_TOTAL.load(Relaxed)
}

/// RAII scope that stamps this thread's published events with `scope`.
pub struct ScopeGuard {
    prev: u64,
}

impl ScopeGuard {
    /// Enter `scope`; restored to the previous scope on drop.
    pub fn enter(scope: u64) -> ScopeGuard {
        let prev = CURRENT_SCOPE.with(|s| s.replace(scope));
        ScopeGuard { prev }
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT_SCOPE.with(|s| s.set(self.prev));
    }
}

/// Publish `event` under the calling thread's current scope. A single
/// relaxed load and immediate return when nobody subscribes.
#[inline]
pub fn publish(event: Event) {
    if !BUS_ARMED.load(Relaxed) {
        return;
    }
    publish_slow(current_scope(), event);
}

/// Publish `event` under an explicit `scope` (for call sites that hold the
/// session's scope but run outside the worker thread, e.g. admission).
#[inline]
pub fn publish_scoped(scope: u64, event: Event) {
    if !BUS_ARMED.load(Relaxed) {
        return;
    }
    publish_slow(scope, event);
}

#[cold]
fn publish_slow(scope: u64, event: Event) {
    let record = EventRecord {
        seq: NEXT_SEQ.fetch_add(1, Relaxed),
        scope,
        ts_ns: crate::trace::now_ns(),
        event,
    };
    let subs = subscribers().lock().unwrap();
    for sub in subs.iter() {
        if let Some(want) = sub.filter {
            if want != scope {
                continue;
            }
        }
        let mut state = sub.state.lock().unwrap();
        while state.ring.len() >= sub.capacity.max(1) {
            state.ring.pop_front();
            state.dropped_pending += 1;
            sub.dropped_total.fetch_add(1, Relaxed);
            DROPPED_TOTAL.fetch_add(1, Relaxed);
        }
        state.ring.push_back(record.clone());
        drop(state);
        sub.wakeup.notify_one();
    }
}

/// A batch drained from a subscriber's ring.
#[derive(Debug, Default)]
pub struct Drain {
    /// Events in publish order.
    pub events: Vec<EventRecord>,
    /// Events lost to ring overflow since the previous drain. Losses sit
    /// *before* `events` in publish order (the ring drops oldest-first).
    pub dropped: u64,
}

impl Drain {
    /// True when the drain carried neither events nor a drop notice.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }
}

/// A live subscription; unregisters (and disarms the bus if it was the
/// last subscriber) on drop.
pub struct Subscriber {
    shared: Arc<SubscriberShared>,
}

/// Subscribe to events of `scope` (`None` = all scopes) with the default
/// ring capacity.
pub fn subscribe(scope: Option<u64>) -> Subscriber {
    subscribe_with_capacity(scope, DEFAULT_SUBSCRIBER_CAPACITY)
}

/// Subscribe with an explicit ring bound (clamped to at least 1).
pub fn subscribe_with_capacity(scope: Option<u64>, capacity: usize) -> Subscriber {
    let shared = Arc::new(SubscriberShared {
        filter: scope,
        capacity: capacity.max(1),
        state: Mutex::new(SubscriberState {
            ring: VecDeque::new(),
            dropped_pending: 0,
        }),
        wakeup: Condvar::new(),
        dropped_total: AtomicU64::new(0),
    });
    let mut subs = subscribers().lock().unwrap();
    subs.push(Arc::clone(&shared));
    // Arm while still holding the list lock so a racing publish on another
    // thread cannot observe armed-without-subscribers or vice versa in a
    // way that strands this subscriber permanently silent.
    BUS_ARMED.store(true, Relaxed);
    drop(subs);
    Subscriber { shared }
}

impl Subscriber {
    /// Drain everything currently buffered without blocking.
    pub fn poll(&self) -> Drain {
        let mut state = self.shared.state.lock().unwrap();
        Drain {
            events: state.ring.drain(..).collect(),
            dropped: std::mem::take(&mut state.dropped_pending),
        }
    }

    /// Block until at least one event (or drop notice) is buffered, or
    /// `timeout` elapses; then drain. An empty [`Drain`] means timeout.
    pub fn wait(&self, timeout: Duration) -> Drain {
        let mut state = self.shared.state.lock().unwrap();
        if state.ring.is_empty() && state.dropped_pending == 0 {
            let (guard, _timed_out) = self
                .shared
                .wakeup
                .wait_timeout(state, timeout)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
        Drain {
            events: state.ring.drain(..).collect(),
            dropped: std::mem::take(&mut state.dropped_pending),
        }
    }

    /// Total events this subscriber has lost to overflow, including losses
    /// already reported by [`Subscriber::poll`].
    pub fn dropped_total(&self) -> u64 {
        self.shared.dropped_total.load(Relaxed)
    }
}

impl Drop for Subscriber {
    fn drop(&mut self) {
        let mut subs = subscribers().lock().unwrap();
        subs.retain(|s| !Arc::ptr_eq(s, &self.shared));
        if subs.is_empty() {
            BUS_ARMED.store(false, Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(n: u64) -> Event {
        Event::QueueDepth { depth: n }
    }

    #[test]
    fn publish_without_subscribers_is_inert() {
        // Other tests in this binary may hold live subscribers; rely on
        // scope isolation instead of global emptiness.
        let scope = next_scope_id();
        publish_scoped(scope, tick(1));
        let sub = subscribe(Some(scope));
        let drain = sub.poll();
        assert!(drain.is_empty(), "pre-subscribe publish must not buffer");
    }

    #[test]
    fn events_arrive_in_order_with_stamps() {
        let scope = next_scope_id();
        let sub = subscribe(Some(scope));
        let _guard = ScopeGuard::enter(scope);
        assert!(bus_enabled());
        publish(tick(1));
        publish(tick(2));
        let drain = sub.poll();
        assert_eq!(drain.dropped, 0);
        assert_eq!(drain.events.len(), 2);
        assert!(drain.events[0].seq < drain.events[1].seq);
        assert!(drain.events.iter().all(|e| e.scope == scope));
        assert_eq!(drain.events[1].event, tick(2));
    }

    #[test]
    fn scope_filter_excludes_other_scopes() {
        let mine = next_scope_id();
        let other = next_scope_id();
        let sub = subscribe(Some(mine));
        publish_scoped(other, tick(7));
        publish_scoped(mine, tick(8));
        let drain = sub.poll();
        assert_eq!(drain.events.len(), 1);
        assert_eq!(drain.events[0].event, tick(8));
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let scope = next_scope_id();
        let sub = subscribe_with_capacity(Some(scope), 2);
        for i in 0..10 {
            publish_scoped(scope, tick(i));
        }
        let drain = sub.poll();
        assert_eq!(drain.events.len(), 2);
        assert_eq!(drain.dropped, 8);
        assert_eq!(sub.dropped_total(), 8);
        // The freshest events survive.
        assert_eq!(drain.events[1].event, tick(9));
        // events + dropped reconcile with what was published.
        assert_eq!(drain.events.len() as u64 + drain.dropped, 10);
        // A later drain does not re-report old losses.
        assert_eq!(sub.poll().dropped, 0);
    }

    #[test]
    fn scope_guard_nests_and_restores() {
        assert_eq!(current_scope(), 0);
        let outer = next_scope_id();
        let inner = next_scope_id();
        let _a = ScopeGuard::enter(outer);
        assert_eq!(current_scope(), outer);
        {
            let _b = ScopeGuard::enter(inner);
            assert_eq!(current_scope(), inner);
        }
        assert_eq!(current_scope(), outer);
    }

    #[test]
    fn wait_wakes_on_publish() {
        let scope = next_scope_id();
        let sub = subscribe(Some(scope));
        let publisher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            publish_scoped(scope, tick(3));
        });
        let drain = sub.wait(Duration::from_secs(5));
        assert_eq!(drain.events.len(), 1);
        publisher.join().unwrap();
        // And a wait with nothing pending times out empty.
        assert!(sub.wait(Duration::from_millis(10)).is_empty());
    }

    #[test]
    fn kv_round_trip_all_variants() {
        let events = [
            Event::SolverIteration {
                solver: "wma",
                iteration: 3,
                covered: 42,
                total: 60,
                matching_us: 1200,
                cover_us: 80,
                demand: 77,
                edges: 512,
            },
            Event::Phase {
                name: "resolve.selection",
                state: PhaseState::Start,
            },
            Event::Phase {
                name: "resolve.assignment",
                state: PhaseState::End,
            },
            Event::ResolveDone {
                warm: true,
                objective: 123_456,
            },
            Event::QueueDepth { depth: 5 },
            Event::Augmentations { total: 999 },
        ];
        for event in events {
            let kvs: Vec<(String, String)> = event
                .to_kvs()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            let back = Event::from_kvs(event.kind(), &kvs).unwrap();
            assert_eq!(back, event);
        }
    }

    #[test]
    fn from_kvs_rejects_junk() {
        assert!(Event::from_kvs("nope", &[]).is_none());
        assert!(Event::from_kvs("queue", &[]).is_none());
        let bad = [("depth".to_string(), "x".to_string())];
        assert!(Event::from_kvs("queue", &bad).is_none());
        let warm2 = [
            ("warm".to_string(), "2".to_string()),
            ("objective".to_string(), "1".to_string()),
        ];
        assert!(Event::from_kvs("resolve", &warm2).is_none());
    }

    #[test]
    fn unknown_tokens_intern_to_other() {
        let kvs = [
            ("name".to_string(), "mystery.phase".to_string()),
            ("state".to_string(), "start".to_string()),
        ];
        let event = Event::from_kvs("phase", &kvs).unwrap();
        assert_eq!(
            event,
            Event::Phase {
                name: "other",
                state: PhaseState::Start
            }
        );
    }
}
