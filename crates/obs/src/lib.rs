//! # mcfs-obs
//!
//! The unified observability substrate for the MCFS reproduction: one
//! metrics registry and one tracing core shared by every layer, from the
//! distance oracle at the bottom to the wire protocol at the top.
//!
//! * [`registry`] — named families of relaxed-atomic counters, gauges and
//!   log2 histograms with a stable Prometheus text-exposition renderer.
//!   [`Registry::global`] hosts library-internal counters (oracle row-cache
//!   traffic, matcher augmentations, solver iterations); embedding layers
//!   like the server create their own [`Registry`] per instance so
//!   instance-scoped counters never bleed between servers in one process.
//! * [`trace`] — spans with thread-local stacks, monotonic timestamps and
//!   a bounded ring of finished spans. Near-zero cost when no trace is
//!   active: [`span`] is one relaxed atomic load on the disabled path.
//! * [`export`] — Chrome trace-event JSON (Perfetto-loadable), JSONL, and
//!   the positional wire line the server's `TRACE` verb carries.
//! * [`bus`] — a bounded broadcast bus for live progress events (solver
//!   iterations, resolve phases, queue depth). Slow subscribers lose the
//!   oldest events (with drop accounting) instead of blocking publishers;
//!   with no subscriber, [`publish`] is one relaxed atomic load.
//!
//! The crate is dependency-free (std only) so every other crate in the
//! workspace can instrument itself without weight.
//!
//! ```
//! use mcfs_obs::{span, Registry, TraceGuard};
//!
//! let solves = Registry::global().counter("mcfs_doc_solves_total", "example");
//! let guard = TraceGuard::enter(0, 0);
//! {
//!     let _solve = span("doc.solve");
//!     solves.inc();
//! }
//! let spans = mcfs_obs::spans_for(guard.trace());
//! assert_eq!(spans.len(), 1);
//! assert_eq!(spans[0].name, "doc.solve");
//! ```

#![warn(missing_docs)]

pub mod bus;
pub mod export;
pub mod registry;
pub mod trace;

pub use bus::{
    bus_enabled, current_scope, next_scope_id, publish, publish_scoped, subscribe,
    subscribe_with_capacity, Event, EventRecord, PhaseState, ScopeGuard, Subscriber,
    DEFAULT_SUBSCRIBER_CAPACITY,
};
pub use export::{span_from_wire_line, span_to_wire_line, to_chrome_trace, to_jsonl};
pub use registry::{Counter, Gauge, Histogram, Registry};
pub use trace::{
    alloc_span_id, clear_spans, current_trace, last_spans, next_trace_id, now_ns, record_manual,
    set_force, set_ring_capacity, span, spans_for, thread_id, verify_nesting, Span, SpanRecord,
    TraceGuard, DEFAULT_RING_CAPACITY,
};
