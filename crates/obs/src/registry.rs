//! The metrics registry: named families of relaxed-atomic counters, gauges
//! and log2 histograms, rendered in the Prometheus text exposition format.
//!
//! The design generalizes the server's original hand-rolled counter grid:
//! a [`Registry`] owns *families* (one Prometheus `# TYPE` block each), a
//! family owns *cells* (one per distinct label set), and registration hands
//! back a cheap cloneable handle ([`Counter`], [`Gauge`], [`Histogram`])
//! that is a bare `Arc<AtomicU64>` (or a few of them) — the increment path
//! never touches the registry lock, so instrumented hot loops pay one
//! relaxed atomic add per event.
//!
//! Registration is idempotent: asking for the same family + label set again
//! returns a handle to the *same* cell, which is what lets independent
//! subsystems (and thin views like the server's `Metrics`) share counters
//! without coordination. Re-registering a name with a different metric kind
//! panics — that is a programming error, not an operational condition.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter handle.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A gauge handle: a value that can move both ways (or track a high-water
/// mark via [`Gauge::set_max`]).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed);
    }

    /// Raise the value to `v` if it is higher (high-water tracking).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Decrement by one (saturating at zero is the caller's problem — a
    /// gauge that can underflow is being driven by unbalanced events).
    pub fn dec(&self) {
        self.0.fetch_sub(1, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCell {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A log2 histogram handle: bucket `0` counts observations `< 1`, bucket
/// `i` counts `[2^(i-1), 2^i)`, and the last bucket is the catch-all —
/// exactly the bucketing of the server's original latency histogram.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let cell = &*self.0;
        let bucket = if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(cell.buckets.len() - 1)
        };
        cell.buckets[bucket].fetch_add(1, Relaxed);
        cell.sum.fetch_add(value, Relaxed);
        cell.count.fetch_add(1, Relaxed);
    }

    /// Number of buckets (including the catch-all).
    pub fn num_buckets(&self) -> usize {
        self.0.buckets.len()
    }

    /// Count in bucket `i` alone (not cumulative).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.0.buckets[i].load(Relaxed)
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Relaxed)
    }
}

/// One labeled cell of a family.
#[derive(Debug)]
enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCell>),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn token(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
struct Family {
    kind: Kind,
    help: String,
    /// BTreeMap keys give the exposition a stable label order for free.
    cells: BTreeMap<Vec<(String, String)>, Cell>,
}

/// A set of metric families. See the [module docs](self).
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
}

fn valid_label(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry that library-internal instrumentation
    /// (oracle, matcher, solver counters) registers into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn cell(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        buckets: usize,
    ) -> Cell {
        assert!(valid_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_label(k), "invalid label name {k:?}");
        }
        let key: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_owned(), v.to_owned()))
            .collect();
        let mut families = self.families.lock().unwrap();
        let family = families.entry(name.to_owned()).or_insert_with(|| Family {
            kind,
            help: help.to_owned(),
            cells: BTreeMap::new(),
        });
        assert_eq!(
            family.kind,
            kind,
            "metric {name:?} already registered as a {}",
            family.kind.token()
        );
        let cell = family.cells.entry(key).or_insert_with(|| match kind {
            Kind::Counter => Cell::Counter(Arc::new(AtomicU64::new(0))),
            Kind::Gauge => Cell::Gauge(Arc::new(AtomicU64::new(0))),
            Kind::Histogram => Cell::Histogram(Arc::new(HistogramCell {
                buckets: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            })),
        });
        match cell {
            Cell::Counter(c) => Cell::Counter(Arc::clone(c)),
            Cell::Gauge(g) => Cell::Gauge(Arc::clone(g)),
            Cell::Histogram(h) => Cell::Histogram(Arc::clone(h)),
        }
    }

    /// Register (or look up) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or look up) a labeled counter cell.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.cell(name, help, labels, Kind::Counter, 0) {
            Cell::Counter(c) => Counter(c),
            _ => unreachable!("cell() returns the requested kind"),
        }
    }

    /// Register (or look up) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or look up) a labeled gauge cell.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.cell(name, help, labels, Kind::Gauge, 0) {
            Cell::Gauge(g) => Gauge(g),
            _ => unreachable!("cell() returns the requested kind"),
        }
    }

    /// Register (or look up) an unlabeled log2 histogram with `buckets`
    /// buckets (the last is the catch-all). Asking again with a different
    /// bucket count returns the original cell unchanged.
    pub fn histogram_log2(&self, name: &str, help: &str, buckets: usize) -> Histogram {
        assert!(buckets >= 2, "a histogram needs at least two buckets");
        match self.cell(name, help, &[], Kind::Histogram, buckets) {
            Cell::Histogram(h) => Histogram(h),
            _ => unreachable!("cell() returns the requested kind"),
        }
    }

    /// Render every family in the Prometheus text exposition format
    /// (version 0.0.4). Families and cells appear in lexicographic order,
    /// so the output is byte-stable for a fixed set of values.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock().unwrap();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.token()));
            for (labels, cell) in &family.cells {
                match cell {
                    Cell::Counter(v) | Cell::Gauge(v) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, None),
                            v.load(Relaxed)
                        ));
                    }
                    Cell::Histogram(h) => {
                        let mut cumulative = 0u64;
                        let n = h.buckets.len();
                        for (i, bucket) in h.buckets.iter().enumerate() {
                            cumulative += bucket.load(Relaxed);
                            // Bucket i counts values < 2^i, i.e. le = 2^i - 1
                            // in integer terms; the catch-all is +Inf.
                            let le = if i + 1 == n {
                                "+Inf".to_owned()
                            } else {
                                ((1u64 << i) - 1).to_string()
                            };
                            out.push_str(&format!(
                                "{name}_bucket{} {cumulative}\n",
                                render_labels(labels, Some(&le))
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            render_labels(labels, None),
                            h.sum.load(Relaxed)
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            render_labels(labels, None),
                            h.count.load(Relaxed)
                        ));
                    }
                }
            }
        }
        out
    }
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells_and_render_stably() {
        let r = Registry::new();
        let a = r.counter_with("mcfs_test_total", "help text", &[("verb", "solve")]);
        let b = r.counter_with("mcfs_test_total", "help text", &[("verb", "solve")]);
        let other = r.counter_with("mcfs_test_total", "help text", &[("verb", "open")]);
        a.inc();
        b.add(2);
        other.inc();
        assert_eq!(a.get(), 3, "same family+labels share one cell");
        let text = r.render_prometheus();
        assert_eq!(
            text,
            "# HELP mcfs_test_total help text\n\
             # TYPE mcfs_test_total counter\n\
             mcfs_test_total{verb=\"open\"} 1\n\
             mcfs_test_total{verb=\"solve\"} 3\n"
        );
    }

    #[test]
    fn gauge_set_max_tracks_high_water() {
        let r = Registry::new();
        let g = r.gauge("mcfs_depth", "queue depth");
        g.set_max(3);
        g.set_max(2);
        assert_eq!(g.get(), 3);
        g.inc();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn histogram_buckets_match_the_log2_rule() {
        let r = Registry::new();
        let h = r.histogram_log2("mcfs_lat_us", "latency", 6);
        // value 0 -> bucket 0; 1 -> bucket 1 ([1,2)); 3 -> bucket 2 ([2,4));
        // 900 -> catch-all (bucket 5).
        for v in [0, 1, 3, 900] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 904);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(1), 1);
        assert_eq!(h.bucket_count(2), 1);
        assert_eq!(h.bucket_count(5), 1);
        let text = r.render_prometheus();
        assert!(text.contains("mcfs_lat_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("mcfs_lat_us_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("mcfs_lat_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("mcfs_lat_us_sum 904\n"));
        assert!(text.contains("mcfs_lat_us_count 4\n"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("mcfs_thing", "as counter");
        r.gauge("mcfs_thing", "as gauge");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_are_rejected() {
        Registry::new().counter("9starts-with-digit", "bad");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("mcfs_esc_total", "h", &[("k", "a\"b\\c")])
            .inc();
        let text = r.render_prometheus();
        assert!(text.contains("mcfs_esc_total{k=\"a\\\"b\\\\c\"} 1"));
    }
}
