//! The Hilbert space-filling-curve baseline (paper Section VII-A).
//!
//! "It divides the input customer set into `k` buckets and assigns each
//! bucket to the candidate facility node closest to the bucket's centroid.
//! We form buckets containing `⌈m/k⌉` consecutive customers using the
//! spatial order defined by a Hilbert space-filling curve."
//!
//! Per the paper's Figure 6c discussion, the baseline is component-aware:
//! "it considers each component separately, calculating required facilities
//! per component proportionally to the number of customers in the
//! component." The final assignment is an optimal capacitated matching onto
//! the chosen set (the paper runs SIA for this), and `CoverComponents`
//! repairs the selection first if centroid snapping under-provisioned a
//! component's capacity.
//!
//! Requires node coordinates on the graph (the curve is geometric); that is
//! the baseline's defining blind spot — it never looks at *network*
//! distances when siting, which is exactly why it falters on clustered
//! topologies (Figure 7).

use mcfs::assign::optimal_assignment;
use mcfs::components::{capacity_suffices, cover_components};
use mcfs::{McfsInstance, Solution, SolveError, Solver};
use mcfs_graph::{hilbert::hilbert_keys, GridIndex, Point};
use rustc_hash::FxHashSet;

/// The Hilbert bucketing baseline.
#[derive(Clone, Debug)]
pub struct HilbertBaseline {
    /// Hilbert grid order (`2^order` cells per side). 16 gives sub-meter
    /// resolution on city-scale extents.
    pub order: u32,
}

impl Default for HilbertBaseline {
    fn default() -> Self {
        Self { order: 16 }
    }
}

impl HilbertBaseline {
    /// Baseline with the default curve resolution.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Solver for HilbertBaseline {
    fn solve(&self, inst: &McfsInstance) -> Result<Solution, SolveError> {
        let feas = inst.check_feasibility().map_err(SolveError::Infeasible)?;
        let coords = inst
            .graph()
            .coords()
            .expect("HilbertBaseline requires node coordinates");
        let cc = &feas.components;
        let k = inst.k();

        // --- Budget split: proportional to customers, floored at the
        // feasibility minimum, capped at the component's candidate count. ---
        let mut cust_per: Vec<Vec<u32>> = vec![Vec::new(); cc.count];
        for (i, &s) in inst.customers().iter().enumerate() {
            cust_per[cc.of(s) as usize].push(i as u32);
        }
        let mut cand_per: Vec<Vec<u32>> = vec![Vec::new(); cc.count];
        for (j, f) in inst.facilities().iter().enumerate() {
            cand_per[cc.of(f.node) as usize].push(j as u32);
        }
        let mut alloc: Vec<usize> = (0..cc.count)
            .map(|g| {
                if cust_per[g].is_empty() {
                    0
                } else {
                    feas.min_counts[g].max(1)
                }
            })
            .collect();
        let mut spent: usize = alloc.iter().sum();
        // Largest-share-first distribution of the remaining budget.
        while spent < k {
            let next = (0..cc.count)
                .filter(|&g| !cust_per[g].is_empty() && alloc[g] < cand_per[g].len())
                .max_by(|&a, &b| {
                    let ra = cust_per[a].len() as f64 / alloc[a].max(1) as f64;
                    let rb = cust_per[b].len() as f64 / alloc[b].max(1) as f64;
                    ra.total_cmp(&rb).then(b.cmp(&a))
                });
            match next {
                Some(g) => {
                    alloc[g] += 1;
                    spent += 1;
                }
                None => break, // every populated component saturated
            }
        }

        // --- Per component: Hilbert-order customers, bucket, snap centroids. ---
        let mut selection: Vec<u32> = Vec::new();
        for g in 0..cc.count {
            if cust_per[g].is_empty() || alloc[g] == 0 {
                continue;
            }
            let pts: Vec<Point> = cust_per[g]
                .iter()
                .map(|&i| coords[inst.customers()[i as usize] as usize])
                .collect();
            let keys = hilbert_keys(&pts, self.order);
            let mut by_curve: Vec<usize> = (0..pts.len()).collect();
            by_curve.sort_by_key(|&i| keys[i]);

            let cand_pts: Vec<Point> = cand_per[g]
                .iter()
                .map(|&j| coords[inst.facilities()[j as usize].node as usize])
                .collect();
            // Cell size scaled to the candidate density for fast ring search.
            let extent = bounding_span(&cand_pts).max(1e-9);
            let cell = (extent / (cand_pts.len() as f64).sqrt().max(1.0)).max(1e-9);
            let index = GridIndex::build(&cand_pts, cell);

            let buckets = alloc[g].min(by_curve.len());
            let chunk = by_curve.len().div_ceil(buckets);
            let mut taken: FxHashSet<u32> = FxHashSet::default();
            for b in 0..buckets {
                let lo = b * chunk;
                if lo >= by_curve.len() {
                    break;
                }
                let hi = ((b + 1) * chunk).min(by_curve.len());
                let slice = &by_curve[lo..hi];
                let centroid = Point::new(
                    slice.iter().map(|&i| pts[i].x).sum::<f64>() / slice.len() as f64,
                    slice.iter().map(|&i| pts[i].y).sum::<f64>() / slice.len() as f64,
                );
                if let Some(local) = index.nearest_where(centroid, |c| !taken.contains(&c)) {
                    taken.insert(local);
                    selection.push(cand_per[g][local as usize]);
                }
            }
        }

        if selection.is_empty() {
            return Err(SolveError::AssignmentFailed { customer: 0 });
        }
        // Capacity repair + optimal matching (the paper's nonuniform recipe).
        if !capacity_suffices(inst, &selection, cc) {
            selection = cover_components(inst, selection, cc)?;
        }
        let (assignment, objective) = optimal_assignment(inst, &selection)?;
        Ok(Solution {
            facilities: selection,
            assignment,
            objective,
        })
    }

    fn name(&self) -> &'static str {
        "Hilbert"
    }
}

/// Larger of the x/y spans of a point set.
fn bounding_span(pts: &[Point]) -> f64 {
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in pts {
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    if pts.is_empty() {
        0.0
    } else {
        (max_x - min_x).max(max_y - min_y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfs_graph::{Graph, GraphBuilder, NodeId};

    /// A 1-D "road" with coordinates matching node positions.
    fn line(n: usize, spacing: f64) -> Graph {
        let pts: Vec<Point> = (0..n)
            .map(|i| Point::new(i as f64 * spacing, 0.0))
            .collect();
        let mut b = GraphBuilder::with_coords(pts);
        for i in 0..n - 1 {
            b.add_edge(i as NodeId, i as NodeId + 1, spacing as u64);
        }
        b.build()
    }

    #[test]
    fn buckets_split_the_line() {
        let g = line(10, 100.0);
        // Customers clustered at both ends; k = 2 buckets should pick one
        // facility near each end.
        let inst = McfsInstance::builder(&g)
            .customers([0, 1, 8, 9])
            .facilities((0..10).map(|v| mcfs::Facility {
                node: v,
                capacity: 2,
            }))
            .k(2)
            .build()
            .unwrap();
        let sol = HilbertBaseline::new().solve(&inst).unwrap();
        inst.verify(&sol).unwrap();
        let nodes: Vec<NodeId> = sol
            .facilities
            .iter()
            .map(|&j| inst.facilities()[j as usize].node)
            .collect();
        assert!(
            nodes.iter().any(|&v| v <= 2),
            "left cluster served locally: {nodes:?}"
        );
        assert!(
            nodes.iter().any(|&v| v >= 7),
            "right cluster served locally: {nodes:?}"
        );
        assert_eq!(
            sol.objective, 200,
            "each end pays one hop for its second customer"
        );
    }

    #[test]
    fn component_aware_budgeting() {
        // Two islands with coordinates; 3 customers on A, 1 on B, k = 2.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(101.0, 0.0),
        ];
        let mut b = GraphBuilder::with_coords(pts);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(3, 4, 1);
        let g = b.build();
        let inst = McfsInstance::builder(&g)
            .customers([0, 1, 2, 3])
            .facility(1, 3)
            .facility(2, 3)
            .facility(4, 3)
            .k(2)
            .build()
            .unwrap();
        let sol = HilbertBaseline::new().solve(&inst).unwrap();
        inst.verify(&sol).unwrap();
        let nodes: Vec<NodeId> = sol
            .facilities
            .iter()
            .map(|&j| inst.facilities()[j as usize].node)
            .collect();
        assert!(nodes.contains(&4), "island B gets its facility: {nodes:?}");
    }

    #[test]
    fn capacity_repair_kicks_in() {
        // Both buckets would snap to tiny facilities; repair must swap in
        // capacity.
        let g = line(6, 10.0);
        let inst = McfsInstance::builder(&g)
            .customers([0, 1, 2, 3])
            .facility(1, 1) // near left centroid, too small
            .facility(2, 1)
            .facility(4, 4) // big but off-centroid
            .k(2)
            .build()
            .unwrap();
        let sol = HilbertBaseline::new().solve(&inst).unwrap();
        inst.verify(&sol).unwrap();
    }

    #[test]
    fn single_bucket_degenerates_to_one_median() {
        let g = line(5, 10.0);
        let inst = McfsInstance::builder(&g)
            .customers([0, 2, 4])
            .facilities((0..5).map(|v| mcfs::Facility {
                node: v,
                capacity: 3,
            }))
            .k(1)
            .build()
            .unwrap();
        let sol = HilbertBaseline::new().solve(&inst).unwrap();
        inst.verify(&sol).unwrap();
        let node = inst.facilities()[sol.facilities[0] as usize].node;
        assert_eq!(node, 2, "centroid of the whole line");
    }

    #[test]
    fn infeasible_rejected() {
        let g = line(3, 10.0);
        let inst = McfsInstance::builder(&g)
            .customers([0, 1, 2])
            .facility(1, 1)
            .k(1)
            .build()
            .unwrap();
        assert!(matches!(
            HilbertBaseline::new().solve(&inst),
            Err(SolveError::Infeasible(_))
        ));
    }
}
