//! Baseline MCFS solvers from Section VII-A of the paper.
//!
//! * [`HilbertBaseline`] — the strongest scalable baseline: order customers
//!   along a Hilbert space-filling curve, cut the order into `k` buckets,
//!   and snap each bucket's centroid to the nearest candidate facility.
//! * [`BrnnBaseline`] — iterative Bichromatic Reverse Nearest Neighbor
//!   placement under the MaxSum objective, the OLQ-derived approach the
//!   paper's Figure 2 shows to mis-optimize the k-median objective.
//! * [`GreedyAddition`] — the literature's classic greedy k-median
//!   heuristic (not benched by the paper; included as the expected
//!   strong-simple baseline of an open-source release).
//!
//! Both produce their final customer assignment with the optimal bipartite
//! matching from `mcfs-flow` ("it then runs SIA to produce a final
//! assignment", Section VII-A), so any quality gap versus WMA is
//! attributable purely to *facility siting*.

#![warn(missing_docs)]

pub mod brnn;
pub mod greedy;
pub mod hilbert;

pub use brnn::BrnnBaseline;
pub use greedy::GreedyAddition;
pub use hilbert::HilbertBaseline;
