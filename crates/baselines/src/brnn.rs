//! Iterative BRNN baseline (paper Sections III-A and VII-A).
//!
//! Optimal Location Queries place a *single* facility maximizing attracted
//! customers (MaxSum) via Bichromatic Reverse Nearest Neighbor counting.
//! Applied iteratively as an MCFS heuristic: start with the 1-median of the
//! customers, then repeatedly add the candidate that would become the new
//! nearest facility for the most customers ("the region with the highest
//! amount of overlapping NLRs"), recomputing customer Nearest Location
//! Regions each step. The paper's Figure 2 shows why this mis-optimizes the
//! distance objective, and its experiments confirm both poor quality and
//! poor runtime — behaviour this implementation reproduces faithfully,
//! including the expensive per-step NLR recomputation.
//!
//! The final assignment runs the optimal capacitated matching ("it then runs
//! SIA to produce a final assignment"), after a capacity repair pass.
//!
//! With a [`DistanceOracle`] (`threads > 1` or an explicit oracle) the
//! per-customer searches become cached row queries: the 1-median scan
//! prefetches every customer row in one batched parallel query, NLR
//! attraction counting scans those cached rows instead of re-running
//! bounded Dijkstras each step, and the per-step Voronoi update reuses the
//! cached selected-site rows. Results are identical on every path.

use std::sync::Arc;
use std::time::Instant;

use mcfs::assign::optimal_assignment_with;
use mcfs::components::{capacity_suffices, cover_components};
use mcfs::greedy_add::select_greedy;
use mcfs::parallel::resolve_oracle;
use mcfs::stats::SolveStats;
use mcfs::{McfsInstance, Solution, SolveError, Solver};
use mcfs_graph::{
    dijkstra_all, dijkstra_bounded, multi_source_dijkstra, Dist, DistanceOracle, NodeId, INF,
};
use rustc_hash::{FxHashMap, FxHashSet};

/// The iterative BRNN / MaxSum baseline.
#[derive(Clone, Debug, Default)]
pub struct BrnnBaseline {
    /// Distance-substrate worker threads (`0` = auto, `1` = the legacy
    /// search-per-query path); see [`mcfs::parallel`].
    pub threads: usize,
    /// Explicitly shared distance oracle.
    pub oracle: Option<Arc<DistanceOracle>>,
}

impl BrnnBaseline {
    /// Construct the baseline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the distance-substrate worker count (`0` = auto, `1` = legacy
    /// sequential path).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Share an existing distance oracle (and its row cache) with this
    /// baseline.
    pub fn with_oracle(mut self, oracle: Arc<DistanceOracle>) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// Solve and return the solution together with the substrate
    /// instrumentation (per-phase wall times, oracle cache hits/misses).
    pub fn run(&self, inst: &McfsInstance) -> Result<(Solution, SolveStats), SolveError> {
        let feas = inst.check_feasibility().map_err(SolveError::Infeasible)?;
        let g = inst.graph();
        let k = inst.k();

        let oracle = resolve_oracle(self.threads, self.oracle.as_ref());
        let mut stats = SolveStats::for_threads(oracle.as_ref().map_or(1, |o| o.threads()));
        // Per-run attribution: count only this call stack's queries, even if
        // the oracle is shared with other concurrently running solvers.
        let oracle_run = oracle.as_ref().map(|o| o.begin_run());

        // Candidate lookup: node -> candidate indices (largest capacity
        // first so node-level picks take the most capable twin).
        let mut cand_at: FxHashMap<NodeId, Vec<u32>> = FxHashMap::default();
        for (j, f) in inst.facilities().iter().enumerate() {
            cand_at.entry(f.node).or_default().push(j as u32);
        }
        for list in cand_at.values_mut() {
            list.sort_unstable_by_key(|&j| {
                std::cmp::Reverse(inst.facilities()[j as usize].capacity)
            });
        }
        let cand_nodes: Vec<NodeId> = {
            let mut v: Vec<NodeId> = cand_at.keys().copied().collect();
            v.sort_unstable();
            v
        };

        // --- First facility: the 1-median over candidate nodes (MaxSum with
        // no existing facility degenerates to minimizing total distance).
        // With an oracle this is one batched parallel query that also primes
        // the row cache for the NLR scans below. ---
        let t_median = Instant::now();
        let n = g.num_nodes();
        let mut sums = vec![0u64; n];
        let mut reach = vec![0u32; n];
        let customer_rows: Option<Vec<Arc<Vec<Dist>>>> = oracle
            .as_ref()
            .map(|o| o.distances_for_sources(g, inst.customers()));
        for (i, &s) in inst.customers().iter().enumerate() {
            let owned;
            let d: &[Dist] = match &customer_rows {
                Some(rows) => &rows[i],
                None => {
                    owned = dijkstra_all(g, s);
                    &owned
                }
            };
            for v in 0..n {
                if d[v] != INF {
                    sums[v] += d[v];
                    reach[v] += 1;
                }
            }
        }
        let mut taken: FxHashSet<u32> = FxHashSet::default();
        let first_node = cand_at
            .keys()
            .copied()
            .max_by_key(|&v| {
                (
                    reach[v as usize],
                    std::cmp::Reverse(sums[v as usize]),
                    std::cmp::Reverse(v),
                )
            })
            .expect("instances have at least one candidate");
        let first = cand_at[&first_node][0];
        taken.insert(first);
        let mut selection = vec![first];
        stats.add_phase("median", t_median.elapsed());

        // --- Iterative MaxSum additions with fresh NLRs per step. ---
        let t_nlr = Instant::now();
        while selection.len() < k {
            let sel_nodes: Vec<NodeId> = selection
                .iter()
                .map(|&j| inst.facilities()[j as usize].node)
                .collect();
            let (to_sel, _) = match &oracle {
                // Cached: each iteration adds one new selected-site row; the
                // earlier sites' rows are reused from the cache.
                Some(o) => o.multi_source(g, &sel_nodes),
                None => multi_source_dijkstra(g, &sel_nodes),
            };

            // Attraction count per candidate node: customers that would be
            // strictly closer to it than to their current nearest facility.
            // Oracle path: scan the customer's cached row over candidate
            // nodes — the same set a bounded Dijkstra from the customer
            // reports, since `{v : d(s, v) <= bound}` does not depend on how
            // it is enumerated.
            let mut attraction: FxHashMap<NodeId, u32> = FxHashMap::default();
            for (i, &s) in inst.customers().iter().enumerate() {
                let radius = to_sel[s as usize];
                if radius == 0 {
                    continue; // already colocated with a facility
                }
                let bound = if radius == INF { INF } else { radius - 1 };
                match &customer_rows {
                    Some(rows) => {
                        let row = &rows[i];
                        for &v in &cand_nodes {
                            // The INF guard matters when bound == INF: a
                            // bounded Dijkstra never settles unreachable
                            // nodes, so neither may the row scan count them.
                            let d = row[v as usize];
                            if d != INF && d <= bound {
                                *attraction.entry(v).or_insert(0) += 1;
                            }
                        }
                    }
                    None => {
                        for (v, _) in dijkstra_bounded(g, s, bound) {
                            if cand_at.contains_key(&v) {
                                *attraction.entry(v).or_insert(0) += 1;
                            }
                        }
                    }
                }
            }

            // Best unchosen candidate by attraction (ties: smaller node id,
            // matching the paper's "breaking ties arbitrarily" but kept
            // deterministic).
            let best = attraction
                .iter()
                .filter_map(|(&v, &a)| {
                    cand_at[&v]
                        .iter()
                        .find(|&&j| !taken.contains(&j))
                        .map(|&j| (a, v, j))
                })
                .max_by_key(|&(a, v, _)| (a, std::cmp::Reverse(v)));
            match best {
                Some((_, _, j)) => {
                    taken.insert(j);
                    selection.push(j);
                }
                None => break, // nobody attracts anyone anymore
            }
        }
        stats.add_phase("nlr", t_nlr.elapsed());

        // Spend any leftover budget deterministically, repair capacity, and
        // match optimally.
        let t_prov = Instant::now();
        if selection.len() < k {
            select_greedy(inst, &mut selection);
        }
        if !capacity_suffices(inst, &selection, &feas.components) {
            selection = cover_components(inst, selection, &feas.components)?;
        }
        stats.add_phase("provisions", t_prov.elapsed());

        let t_assign = Instant::now();
        let (assignment, objective) = optimal_assignment_with(inst, &selection, oracle.as_deref())?;
        stats.add_phase("assignment", t_assign.elapsed());

        if let Some(run) = &oracle_run {
            stats.record_oracle_run(&run.stats());
        }
        Ok((
            Solution {
                facilities: selection,
                assignment,
                objective,
            },
            stats,
        ))
    }
}

impl Solver for BrnnBaseline {
    fn solve(&self, inst: &McfsInstance) -> Result<Solution, SolveError> {
        self.run(inst).map(|(sol, _)| sol)
    }

    fn name(&self) -> &'static str {
        "BRNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfs::Facility;
    use mcfs_graph::{Graph, GraphBuilder};

    fn path(n: usize, w: u64) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i as NodeId, i as NodeId + 1, w);
        }
        b.build()
    }

    #[test]
    fn first_pick_is_the_one_median() {
        let g = path(7, 10);
        let inst = McfsInstance::builder(&g)
            .customers([0, 3, 6])
            .facilities((0..7).map(|v| Facility {
                node: v,
                capacity: 3,
            }))
            .k(1)
            .build()
            .unwrap();
        let sol = BrnnBaseline::new().solve(&inst).unwrap();
        inst.verify(&sol).unwrap();
        assert_eq!(inst.facilities()[sol.facilities[0] as usize].node, 3);
    }

    #[test]
    fn second_pick_exhibits_the_maxsum_pathology() {
        let g = path(10, 10);
        // Customers bunched left and right. The MaxSum criterion counts
        // attracted customers, not saved distance, so BRNN piles facilities
        // around the center instead of covering the flanks — the paper's
        // Figure 2 in miniature. The distance optimum (one facility per
        // flank) is strictly better.
        let inst = McfsInstance::builder(&g)
            .customers([0, 1, 2, 7, 8, 9])
            .facilities((0..10).map(|v| Facility {
                node: v,
                capacity: 3,
            }))
            .k(2)
            .build()
            .unwrap();
        let sol = BrnnBaseline::new().solve(&inst).unwrap();
        inst.verify(&sol).unwrap();
        let mut nodes: Vec<NodeId> = sol
            .facilities
            .iter()
            .map(|&j| inst.facilities()[j as usize].node)
            .collect();
        nodes.sort_unstable();
        assert!(
            (nodes[1] as i64 - nodes[0] as i64).abs() <= 2,
            "MaxSum picks stay central/adjacent: {nodes:?}"
        );
        let wma = mcfs::Wma::new().solve(&inst).unwrap();
        assert!(
            sol.objective > wma.objective,
            "the pathology costs real distance"
        );
    }

    #[test]
    fn produces_feasible_solution_under_tight_capacities() {
        let g = path(8, 5);
        let inst = McfsInstance::builder(&g)
            .customers([0, 2, 4, 6])
            .facility(1, 2)
            .facility(3, 1)
            .facility(5, 2)
            .facility(7, 2)
            .k(3)
            .build()
            .unwrap();
        let sol = BrnnBaseline::new().solve(&inst).unwrap();
        inst.verify(&sol).unwrap();
        assert!(sol.facilities.len() <= 3);
    }

    #[test]
    fn handles_disconnected_networks() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 2);
        b.add_edge(1, 2, 2);
        b.add_edge(3, 4, 2);
        b.add_edge(4, 5, 2);
        let g = b.build();
        let inst = McfsInstance::builder(&g)
            .customers([0, 2, 3, 5])
            .facility(1, 4)
            .facility(4, 4)
            .k(2)
            .build()
            .unwrap();
        let sol = BrnnBaseline::new().solve(&inst).unwrap();
        inst.verify(&sol).unwrap();
        let nodes: Vec<NodeId> = sol
            .facilities
            .iter()
            .map(|&j| inst.facilities()[j as usize].node)
            .collect();
        assert!(nodes.contains(&1) && nodes.contains(&4));
    }

    #[test]
    fn worse_than_wma_on_the_figure_2_pattern() {
        // The paper's Figure 2 intuition: BRNN's MaxSum greed picks central
        // nodes; the distance optimum wants one facility per flank. On this
        // instance BRNN must not beat WMA.
        use mcfs::Wma;
        let g = path(12, 10);
        let inst = McfsInstance::builder(&g)
            .customers([0, 1, 10, 11])
            .facilities((0..12).map(|v| Facility {
                node: v,
                capacity: 2,
            }))
            .k(2)
            .build()
            .unwrap();
        let brnn = BrnnBaseline::new().solve(&inst).unwrap();
        let wma = Wma::new().solve(&inst).unwrap();
        inst.verify(&brnn).unwrap();
        assert!(brnn.objective >= wma.objective);
    }

    #[test]
    fn thread_count_never_changes_the_solution_and_stats_are_recorded() {
        let g = path(10, 10);
        let inst = McfsInstance::builder(&g)
            .customers([0, 1, 2, 7, 8, 9])
            .facilities((0..10).map(|v| Facility {
                node: v,
                capacity: 3,
            }))
            .k(3)
            .build()
            .unwrap();
        let (legacy, legacy_stats) = BrnnBaseline::new().threads(1).run(&inst).unwrap();
        assert_eq!(legacy_stats.threads, 1);
        assert_eq!(legacy_stats.cache_misses, 0);
        for n in [2, 4] {
            let (par, par_stats) = BrnnBaseline::new().threads(n).run(&inst).unwrap();
            assert_eq!(legacy, par, "threads {n}");
            assert_eq!(par_stats.threads, n);
            // 6 customer rows + selected-site rows; everything after the
            // prefetch hits the cache.
            assert!(par_stats.cache_misses >= 6);
            assert!(par_stats.cache_hits > 0);
            for phase in ["median", "nlr", "provisions", "assignment"] {
                assert!(par_stats.phase(phase).is_some(), "missing {phase}");
            }
        }
    }
}
