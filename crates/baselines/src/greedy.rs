//! Classic greedy-addition k-median baseline.
//!
//! The facility-location literature's default heuristic (Cornuejols,
//! Nemhauser & Wolsey — the paper's reference 10): start empty and
//! repeatedly add the candidate facility that most reduces the
//! *uncapacitated* assignment cost `Σ_i min_{f∈F} dist(s_i, f)`. The
//! uncapacitated objective is submodular, so each round's best candidate is
//! found exactly; capacities are then restored the same way the paper's
//! baselines do — `CoverComponents` repair plus an optimal capacitated
//! matching onto the chosen set.
//!
//! The paper does not bench this heuristic (its Hilbert baseline is the
//! scalable yardstick), but any open-source release of a k-median system
//! would be expected to carry it: it is the natural "strong simple
//! baseline" between BRNN's attraction counting and WMA's matching machinery.
//!
//! Each round sweeps a bounded Dijkstra ball per customer (radius = its
//! current nearest-selected distance, so balls shrink as rounds progress)
//! to collect per-candidate savings, then one full Dijkstra from the newly
//! added site updates the distances — `O(k · (m · ball + E log n))` overall.

use std::sync::Arc;

use mcfs::assign::optimal_assignment_with;
use mcfs::components::{capacity_suffices, cover_components};
use mcfs::parallel::resolve_oracle;
use mcfs::{McfsInstance, Solution, SolveError, Solver};
use mcfs_graph::{dijkstra_bounded, Dist, DistanceOracle, NodeId, INF};
use rustc_hash::{FxHashMap, FxHashSet};

/// The greedy-addition baseline.
#[derive(Clone, Debug, Default)]
pub struct GreedyAddition {
    /// Distance-substrate worker threads (`0` = auto, `1` = the legacy
    /// search-per-query path); see [`mcfs::parallel`].
    pub threads: usize,
    /// Explicitly shared distance oracle.
    pub oracle: Option<Arc<DistanceOracle>>,
}

impl GreedyAddition {
    /// Construct the baseline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the distance-substrate worker count (`0` = auto, `1` = legacy
    /// sequential path).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Share an existing distance oracle (and its row cache) with this
    /// baseline.
    pub fn with_oracle(mut self, oracle: Arc<DistanceOracle>) -> Self {
        self.oracle = Some(oracle);
        self
    }
}

impl Solver for GreedyAddition {
    fn solve(&self, inst: &McfsInstance) -> Result<Solution, SolveError> {
        let feas = inst.check_feasibility().map_err(SolveError::Infeasible)?;
        let g = inst.graph();
        let k = inst.k();

        // With an oracle the per-round candidate-gain sweep reads cached
        // customer rows (one batched parallel prefetch) instead of running
        // a bounded Dijkstra per customer per round; results are identical.
        let oracle = resolve_oracle(self.threads, self.oracle.as_ref());

        // node -> candidate indices (largest capacity first).
        let mut cand_at: FxHashMap<NodeId, Vec<u32>> = FxHashMap::default();
        for (j, f) in inst.facilities().iter().enumerate() {
            cand_at.entry(f.node).or_default().push(j as u32);
        }
        for list in cand_at.values_mut() {
            list.sort_unstable_by_key(|&j| {
                std::cmp::Reverse(inst.facilities()[j as usize].capacity)
            });
        }
        let cand_nodes: Vec<NodeId> = {
            let mut v: Vec<NodeId> = cand_at.keys().copied().collect();
            v.sort_unstable();
            v
        };
        let customer_rows: Option<Vec<Arc<Vec<Dist>>>> = oracle
            .as_ref()
            .map(|o| o.distances_for_sources(g, inst.customers()));

        let mut taken: FxHashSet<u32> = FxHashSet::default();
        let mut selection: Vec<u32> = Vec::with_capacity(k);

        // current[i]: distance of customer i to its nearest selected site
        // (INF while nothing is selected).
        let mut current: Vec<u64> = vec![INF; inst.num_customers()];

        for _round in 0..k {
            // Gain of adding candidate node v: Σ_i max(0, current_i − d(s_i, v)).
            // Computed customer-side: each customer searches outward up to its
            // current distance; every candidate node found earns the savings.
            let mut gain: FxHashMap<NodeId, u64> = FxHashMap::default();
            for (i, &s) in inst.customers().iter().enumerate() {
                let radius = current[i];
                if radius == 0 {
                    continue;
                }
                // Bound the per-customer ball: before anything is selected,
                // savings are relative to INF, which we cap by searching the
                // whole component (bounded by INF) — the first round is the
                // expensive, exact 1-median evaluation.
                let bound = if radius == INF { INF } else { radius - 1 };
                let saving_of = |d: u64| {
                    if radius == INF {
                        // Use "distance avoided" as the gain proxy so the
                        // first round picks the 1-median: bigger is
                        // better when measured as (D_max − d).
                        u32::MAX as u64 - d
                    } else {
                        radius - d
                    }
                };
                match &customer_rows {
                    Some(rows) => {
                        let row = &rows[i];
                        for &v in &cand_nodes {
                            // INF guard: a bounded Dijkstra never settles
                            // unreachable nodes, so neither may the row scan.
                            let d = row[v as usize];
                            if d != INF && d <= bound {
                                *gain.entry(v).or_insert(0) += saving_of(d);
                            }
                        }
                    }
                    None => {
                        for (v, d) in dijkstra_bounded(g, s, bound) {
                            if cand_at.contains_key(&v) {
                                *gain.entry(v).or_insert(0) += saving_of(d);
                            }
                        }
                    }
                }
            }

            let best = gain
                .iter()
                .filter_map(|(&v, &sv)| {
                    cand_at[&v]
                        .iter()
                        .find(|&&j| !taken.contains(&j))
                        .map(|&j| (sv, v, j))
                })
                .max_by_key(|&(sv, v, _)| (sv, std::cmp::Reverse(v)));
            let Some((_, node, j)) = best else {
                break; // nobody saves anything (or candidates exhausted)
            };
            taken.insert(j);
            selection.push(j);
            // Update per-customer nearest-selected distances with one
            // single-source sweep from the new site (cached when an oracle
            // is active).
            let cached;
            let computed;
            let d_new: &[Dist] = match &oracle {
                Some(o) => {
                    cached = o.row(g, node);
                    &cached
                }
                None => {
                    computed = mcfs_graph::dijkstra_all(g, node);
                    &computed
                }
            };
            for (i, &s) in inst.customers().iter().enumerate() {
                let d = d_new[s as usize];
                if d < current[i] {
                    current[i] = d;
                }
            }
        }

        if selection.is_empty() {
            return Err(SolveError::AssignmentFailed { customer: 0 });
        }
        // Capacity restoration, exactly as the other baselines do it.
        if selection.len() < k {
            mcfs::greedy_add::select_greedy(inst, &mut selection);
        }
        if !capacity_suffices(inst, &selection, &feas.components) {
            selection = cover_components(inst, selection, &feas.components)?;
        }
        let (assignment, objective) = optimal_assignment_with(inst, &selection, oracle.as_deref())?;
        Ok(Solution {
            facilities: selection,
            assignment,
            objective,
        })
    }

    fn name(&self) -> &'static str {
        "Greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfs::Facility;
    use mcfs_graph::{Graph, GraphBuilder};

    fn path(n: usize, w: u64) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i as NodeId, i as NodeId + 1, w);
        }
        b.build()
    }

    #[test]
    fn first_pick_is_the_one_median() {
        let g = path(9, 10);
        let inst = McfsInstance::builder(&g)
            .customers([0, 4, 8])
            .facilities((0..9).map(|v| Facility {
                node: v,
                capacity: 3,
            }))
            .k(1)
            .build()
            .unwrap();
        let sol = GreedyAddition::new().solve(&inst).unwrap();
        inst.verify(&sol).unwrap();
        assert_eq!(inst.facilities()[sol.facilities[0] as usize].node, 4);
    }

    #[test]
    fn covers_both_flanks_with_two() {
        let g = path(12, 10);
        let inst = McfsInstance::builder(&g)
            .customers([0, 1, 10, 11])
            .facilities((0..12).map(|v| Facility {
                node: v,
                capacity: 2,
            }))
            .k(2)
            .build()
            .unwrap();
        let sol = GreedyAddition::new().solve(&inst).unwrap();
        inst.verify(&sol).unwrap();
        let mut nodes: Vec<NodeId> = sol
            .facilities
            .iter()
            .map(|&j| inst.facilities()[j as usize].node)
            .collect();
        nodes.sort_unstable();
        assert!(
            nodes[0] <= 1 && nodes[1] >= 10,
            "one site per flank: {nodes:?}"
        );
        // That is also the capacitated optimum here.
        assert_eq!(sol.objective, 20);
    }

    #[test]
    fn capacity_repair_applies() {
        // Greedy (uncapacitated) would put one site mid-cluster, but the
        // tiny capacities force a broader selection.
        let g = path(8, 5);
        let inst = McfsInstance::builder(&g)
            .customers([3, 4, 3, 4])
            .facility(3, 1)
            .facility(4, 1)
            .facility(0, 1)
            .facility(7, 1)
            .k(4)
            .build()
            .unwrap();
        let sol = GreedyAddition::new().solve(&inst).unwrap();
        inst.verify(&sol).unwrap();
        assert_eq!(sol.facilities.len(), 4);
    }

    #[test]
    fn disconnected_networks_get_repaired() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 2);
        b.add_edge(1, 2, 2);
        b.add_edge(3, 4, 2);
        b.add_edge(4, 5, 2);
        let g = b.build();
        let inst = McfsInstance::builder(&g)
            .customers([0, 2, 3, 5])
            .facility(1, 4)
            .facility(4, 4)
            .k(2)
            .build()
            .unwrap();
        let sol = GreedyAddition::new().solve(&inst).unwrap();
        inst.verify(&sol).unwrap();
        let nodes: Vec<NodeId> = sol
            .facilities
            .iter()
            .map(|&j| inst.facilities()[j as usize].node)
            .collect();
        assert!(nodes.contains(&1) && nodes.contains(&4));
    }

    #[test]
    fn thread_count_never_changes_the_solution() {
        let g = path(12, 10);
        let inst = McfsInstance::builder(&g)
            .customers([0, 1, 10, 11])
            .facilities((0..12).map(|v| Facility {
                node: v,
                capacity: 2,
            }))
            .k(3)
            .build()
            .unwrap();
        let legacy = GreedyAddition::new().threads(1).solve(&inst).unwrap();
        for n in [2, 4] {
            let par = GreedyAddition::new().threads(n).solve(&inst).unwrap();
            assert_eq!(legacy, par, "threads {n}");
        }
    }

    #[test]
    fn never_beats_the_enumerated_optimum() {
        use mcfs_exact_shim::enumerate_optimal;
        let g = path(8, 3);
        let inst = McfsInstance::builder(&g)
            .customers([0, 2, 5, 7])
            .facility(1, 2)
            .facility(3, 2)
            .facility(6, 2)
            .k(2)
            .build()
            .unwrap();
        let greedy = GreedyAddition::new().solve(&inst).unwrap();
        let opt = enumerate_optimal(&inst).unwrap();
        assert!(greedy.objective >= opt.objective);
    }

    // Local shim so the test can reach the exact oracle without a circular
    // dev-dependency (exact depends on core, not on baselines, so this is
    // clean as a dev-dependency).
    use mcfs_exact as mcfs_exact_shim;
}
