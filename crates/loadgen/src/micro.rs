//! Micro-benchmarks that pin the server-side fixes with before/after
//! numbers in `BENCH_LOAD.json`:
//!
//! * **frame_write_batching** — the watch-pump contention fix. The old
//!   pump wrote each event frame straight to the connection stream while
//!   holding the shared writer mutex: one small syscall per `write!`
//!   fragment, lock held for the whole drain of syscalls. The new pump
//!   serializes the drain into a reused buffer outside the lock and does
//!   a single `write_all` under it. This bench replays both shapes over a
//!   real localhost socket (a reader thread drains the far end).
//! * **frame_parse_scratch** — the allocation-churn fix. The old parser
//!   allocated a fresh `String` per frame line; the new one reads verb
//!   lines into a per-connection [`mcfs_server::FrameScratch`]. Both
//!   paths parse the identical byte stream.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

use mcfs_server::{EventBody, EventFrame, FrameScratch, Request, TracedRequest};

use crate::report::MicroBench;

/// Frames per simulated pump drain; matches a busy watcher's typical
/// burst (one solve's worth of iteration events).
const DRAIN_BATCH: usize = 16;

fn bench_event_frame() -> EventFrame {
    EventFrame {
        session: "bench-session".to_owned(),
        body: EventBody::Event {
            seq: 12345,
            event: mcfs_obs::Event::QueueDepth { depth: 3 },
        },
    }
}

/// A localhost socket pair with a background reader draining the far end
/// into the void, so writes never block on a full kernel buffer.
fn draining_socket() -> std::io::Result<(TcpStream, std::thread::JoinHandle<()>)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let reader = std::thread::Builder::new()
        .name("loadgen-micro-drain".into())
        .spawn(move || {
            if let Ok((mut sock, _)) = listener.accept() {
                let mut sink = [0u8; 65536];
                while matches!(sock.read(&mut sink), Ok(n) if n > 0) {}
            }
        })
        .expect("spawning the drain thread");
    let stream = TcpStream::connect(addr)?;
    Ok((stream, reader))
}

/// Measure the watch-pump write path: per-frame direct writes vs. one
/// batched `write_all` per drain, over `batches * DRAIN_BATCH` frames.
pub fn frame_write_batching(batches: usize) -> std::io::Result<MicroBench> {
    let frame = bench_event_frame();

    // Before: each frame serialized straight into the stream — every
    // `write!` fragment inside `EventFrame::write_to` is its own syscall.
    let (mut stream, reader) = draining_socket()?;
    let t0 = Instant::now();
    for _ in 0..batches {
        for _ in 0..DRAIN_BATCH {
            frame.write_to(&mut stream)?;
        }
        stream.flush()?;
    }
    let before = t0.elapsed();
    drop(stream);
    let _ = reader.join();

    // After: the drain is serialized into a reused buffer, then one
    // `write_all` puts the whole batch on the wire.
    let (mut stream, reader) = draining_socket()?;
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let t1 = Instant::now();
    for _ in 0..batches {
        buf.clear();
        for _ in 0..DRAIN_BATCH {
            frame.write_to(&mut buf)?;
        }
        stream.write_all(&buf)?;
        stream.flush()?;
    }
    let after = t1.elapsed();
    drop(stream);
    let _ = reader.join();

    let frames = (batches * DRAIN_BATCH) as f64;
    Ok(MicroBench {
        name: "frame_write_batching",
        detail: "watch-pump event frame to TCP: per-frame direct writes vs one write_all per 16-frame drain",
        before_ns: before.as_nanos() as f64 / frames,
        after_ns: after.as_nanos() as f64 / frames,
    })
}

/// The byte stream both parse paths consume: a steady-state connection's
/// verb traffic (solve/stats-style one-liners plus edit payloads).
fn parse_corpus(frames: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(frames * 32);
    for i in 0..frames {
        let req = match i % 4 {
            0 => Request::Solve {
                session: "bench".to_owned(),
                deadline_ms: Some(250),
            },
            1 => Request::Stats {
                session: "bench".to_owned(),
            },
            2 => Request::Edit {
                session: "bench".to_owned(),
                edits: vec![mcfs::Edit::AddCustomer { node: 4 }],
                deadline_ms: None,
            },
            _ => Request::Assignment {
                session: "bench".to_owned(),
            },
        };
        req.write_to(&mut buf)
            .expect("writing to a Vec cannot fail");
    }
    buf
}

/// Measure frame parsing: a fresh line `String` per frame (the old
/// behavior, exactly what `TracedRequest::read_from` still does) vs. a
/// reused per-connection [`FrameScratch`].
pub fn frame_parse_scratch(frames: usize) -> MicroBench {
    let corpus = parse_corpus(frames);

    let mut parsed_before = 0usize;
    let t0 = Instant::now();
    {
        let mut r: &[u8] = &corpus;
        while let Some(_req) =
            TracedRequest::read_from(&mut r, 1 << 20).expect("the corpus is well-formed")
        {
            parsed_before += 1;
        }
    }
    let before = t0.elapsed();

    let mut parsed_after = 0usize;
    let mut scratch = FrameScratch::new();
    let t1 = Instant::now();
    {
        let mut r: &[u8] = &corpus;
        while let Some(_req) = TracedRequest::read_from_with(&mut r, 1 << 20, &mut scratch)
            .expect("the corpus is well-formed")
        {
            parsed_after += 1;
        }
    }
    let after = t1.elapsed();

    assert_eq!(parsed_before, frames);
    assert_eq!(parsed_after, frames);
    MicroBench {
        name: "frame_parse_scratch",
        detail:
            "request frame parsing: fresh String per line vs reused per-connection FrameScratch",
        before_ns: before.as_nanos() as f64 / frames as f64,
        after_ns: after.as_nanos() as f64 / frames as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_micro_benches_run_and_agree_on_counts() {
        let write = frame_write_batching(8).expect("socket bench runs");
        assert!(write.before_ns > 0.0 && write.after_ns > 0.0);
        let parse = frame_parse_scratch(256);
        assert!(parse.before_ns > 0.0 && parse.after_ns > 0.0);
    }
}
