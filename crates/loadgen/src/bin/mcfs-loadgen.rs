//! `mcfs-loadgen`: replay a seeded workload against `mcfs-serve` and emit
//! `BENCH_LOAD.json`.
//!
//! ```text
//! mcfs-loadgen [--mix solve-heavy|edit-heavy|read-heavy|mixed]
//!              [--connections N] [--sessions N] [--watchers N]
//!              [--requests N] [--rate HZ] [--seed N]
//!              [--watch-buffer N] [--deadline-ms N] [--instance-side N]
//!              [--workers N] [--queue-limit N]
//!              [--addr HOST:PORT] [--out PATH] [--floor PATH]
//!              [--no-micro] [--chaos] [--strict]
//! ```
//!
//! Without `--addr` the run spins up an in-process server (sized by
//! `--workers`/`--queue-limit`) and drives it over in-memory pipe
//! connections — the deterministic CI shape. With `--addr` it drives an
//! external `mcfs-serve` over TCP and reconciles against a
//! baseline-corrected Prometheus snapshot.
//!
//! `--floor PATH` gates the run against stored SLO floors (`key value`
//! lines; see `mcfs_loadgen::report::Floors`) and exits nonzero on any
//! violation. `--strict` additionally fails on verb-grid mismatches or a
//! client/server quantile disagreement beyond ±1 log2 bucket — only
//! meaningful against a dedicated server.

use std::process::ExitCode;

use mcfs_loadgen::report::QUEUED_VERBS;
use mcfs_loadgen::{
    chaos, micro, parse_server_metrics, reconcile, render_json, Floors, Mix, Profile, Target,
};
use mcfs_server::{ServerConfig, ServerHandle};

#[derive(Clone)]
struct Args {
    profile: Profile,
    workers: usize,
    queue_limit: usize,
    addr: Option<String>,
    out: String,
    floor: Option<String>,
    micro: bool,
    chaos: bool,
    strict: bool,
}

fn usage() -> String {
    "usage: mcfs-loadgen [--mix solve-heavy|edit-heavy|read-heavy|mixed] \
     [--connections N] [--sessions N] [--watchers N] [--requests N] \
     [--rate HZ] [--seed N] [--watch-buffer N] [--deadline-ms N] \
     [--instance-side N] [--workers N] [--queue-limit N] \
     [--addr HOST:PORT] [--out PATH] [--floor PATH] [--no-micro] \
     [--chaos] [--strict]"
        .to_owned()
}

fn default_out() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_LOAD.json").to_owned()
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        profile: Profile::default(),
        workers: 4,
        queue_limit: 8,
        addr: None,
        out: default_out(),
        floor: None,
        micro: true,
        chaos: false,
        strict: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--help" | "-h" => return Err(usage()),
            "--no-micro" => {
                args.micro = false;
                continue;
            }
            "--chaos" => {
                args.chaos = true;
                continue;
            }
            "--strict" => {
                args.strict = true;
                continue;
            }
            _ => {}
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))?;
        let num = || -> Result<usize, String> {
            value
                .parse::<usize>()
                .map_err(|_| format!("{flag} expects a number, got {value:?}"))
        };
        match flag.as_str() {
            "--mix" => {
                args.profile.mix = Mix::from_token(value)
                    .ok_or_else(|| format!("unknown mix {value:?}\n{}", usage()))?;
            }
            "--connections" => args.profile.connections = num()?.max(1),
            "--sessions" => args.profile.sessions = num()?.max(1),
            "--watchers" => args.profile.watchers = num()?,
            "--requests" => args.profile.requests_per_conn = num()?,
            "--rate" => {
                args.profile.rate_hz = value
                    .parse::<f64>()
                    .map_err(|_| format!("--rate expects a number, got {value:?}"))?
                    .max(0.001);
            }
            "--seed" => {
                args.profile.seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("--seed expects a number, got {value:?}"))?;
            }
            "--watch-buffer" => args.profile.watch_buffer = Some(num()?.max(1)),
            "--deadline-ms" => args.profile.deadline_ms = Some(num()? as u64),
            "--instance-side" => args.profile.instance_side = num()?.max(3) as u32,
            "--workers" => args.workers = num()?.max(1),
            "--queue-limit" => args.queue_limit = num()?.max(1),
            "--addr" => args.addr = Some(value.clone()),
            "--out" => args.out.clone_from(value),
            "--floor" => args.floor = Some(value.clone()),
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if args.profile.watchers > args.profile.connections {
        return Err("--watchers cannot exceed --connections".to_owned());
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(String, Vec<String>), String> {
    let mut args = args.clone();
    // A long-lived external server may still hold sessions from an
    // earlier run (OPEN of an existing name is an error), so give each
    // external run its own session namespace. In-process servers are
    // fresh, and keeping `s<n>` there keeps the CI profile byte-stable.
    if args.addr.is_some() {
        args.profile.session_prefix = format!("l{}x", std::process::id());
    }
    let args = &args;
    // Own server unless --addr points at an external one.
    let own_server = if args.addr.is_none() {
        Some(ServerHandle::start(ServerConfig {
            workers: args.workers,
            queue_limit: args.queue_limit,
            ..ServerConfig::default()
        }))
    } else {
        None
    };
    let target = match (&args.addr, &own_server) {
        (Some(addr), _) => Target::Tcp(addr.clone()),
        (None, Some(server)) => Target::InProcess(server),
        (None, None) => unreachable!(),
    };

    // One long-lived metrics connection brackets the run; METRICS
    // snapshots exclude themselves, so the baseline is exact.
    let mut metrics_client = target.connect().map_err(|e| e.to_string())?;
    let before = parse_server_metrics(
        &metrics_client
            .metrics_prometheus()
            .map_err(|e| e.to_string())?,
    );

    eprintln!(
        "mcfs-loadgen: {} x{} connections, {} sessions ({} watched), {} req/conn @ {}/s, seed {}",
        args.profile.mix.token(),
        args.profile.connections,
        args.profile.sessions,
        args.profile.watchers,
        args.profile.requests_per_conn,
        args.profile.rate_hz,
        args.profile.seed
    );
    let outcome = mcfs_loadgen::run(&args.profile, &target).map_err(|e| e.to_string())?;

    let after = parse_server_metrics(
        &metrics_client
            .metrics_prometheus()
            .map_err(|e| e.to_string())?,
    );
    let server_delta = after.delta_from(&before);
    let rec = reconcile(&outcome, &server_delta);

    let mut notes = Vec::new();
    notes.push(
        "satellite fix pinned: watch pumps and the reply path now serialize whole frames to a \
         reused buffer outside the shared writer lock and write them with a single write_all \
         (was: one small write per frame fragment while holding the lock)"
            .to_owned(),
    );
    notes.push(
        "satellite fix pinned: request parsing reuses a per-connection FrameScratch line buffer \
         (was: a fresh String allocation per frame line)"
            .to_owned(),
    );
    notes.push(
        "fix pinned: TCP_NODELAY on both wire ends (was: Nagle held each whole-frame write \
         behind the peer's delayed ACK, flooring every TCP round trip near 40ms)"
            .to_owned(),
    );

    let mut micros = Vec::new();
    if args.micro {
        match micro::frame_write_batching(512) {
            Ok(m) => micros.push(m),
            Err(e) => notes.push(format!("frame_write_batching micro-bench skipped: {e}")),
        }
        micros.push(micro::frame_parse_scratch(20_000));
    }

    // Chaos (after the reconciliation snapshot, so its extra traffic does
    // not disturb the grid). Connection kills need a real socket to
    // sever, so this is TCP-only; the in-process chaos suite lives in
    // tests/load_slo.rs.
    if args.chaos {
        if args.addr.is_none() {
            notes.push(
                "chaos skipped: needs --addr (run tests/load_slo.rs for the in-process chaos \
                 suite)"
                    .to_owned(),
            );
        }
        if let Some(addr) = args.addr.clone() {
            let mut driver = target.connect().map_err(|e| e.to_string())?;
            let session = "chaos-probe";
            driver
                .open_text(
                    session,
                    mcfs_server::OpenKind::Instance,
                    &mcfs_loadgen::workload_instance_text(),
                )
                .map_err(|e| e.to_string())?;
            let baseline =
                chaos::solve_objective(&mut driver, session).map_err(|e| e.to_string())?;
            for _ in 0..8 {
                chaos::kill_mid_request(&addr, &format!("SOLVE {session}\n"))
                    .map_err(|e| e.to_string())?;
            }
            let after_kills =
                chaos::solve_objective(&mut driver, session).map_err(|e| e.to_string())?;
            let storm =
                chaos::deadline_storm(&mut driver, session, 16, 0).map_err(|e| e.to_string())?;
            notes.push(format!(
                "chaos: 8 connections killed mid-SOLVE, objective stable {} -> {}; deadline \
                 storm of 16 expired solves -> {} timeouts / {} ok / {} err",
                baseline, after_kills, storm.timeouts, storm.ok, storm.err
            ));
            if baseline != after_kills {
                return Err(format!(
                    "chaos detected session corruption: objective {baseline} -> {after_kills}"
                ));
            }
            driver.close(session).map_err(|e| e.to_string())?;
        }
    }

    let json = render_json(&args.profile, &outcome, &rec, &micros, &notes);

    eprintln!(
        "mcfs-loadgen: {} ok / {} busy / {} timeout / {} err in {:.2}s ({:.0} ok/s), {} events, {} dropped",
        outcome.ok_total(),
        outcome.busy_total(),
        outcome.verbs.values().map(|v| v.timeout).sum::<u64>(),
        outcome.verbs.values().map(|v| v.err).sum::<u64>(),
        outcome.wall.as_secs_f64(),
        outcome.throughput_ok_per_s(),
        outcome.events,
        outcome.dropped_marker_sum
    );
    for verb in QUEUED_VERBS {
        let stats = outcome.verb(verb);
        if stats.total() > 0 {
            eprintln!(
                "  {verb:<10} n={:<6} p50={}us p99={}us p999={}us",
                stats.total(),
                stats.hist.quantile_us(0.50),
                stats.hist.quantile_us(0.99),
                stats.hist.quantile_us(0.999)
            );
        }
    }
    eprintln!(
        "  reconcile: client n={} server n={}, quantile bucket deltas {:?}, {} grid mismatches",
        rec.client_count,
        rec.server_count,
        rec.bucket_deltas(),
        rec.grid_mismatches.len()
    );

    let mut violations = Vec::new();
    if let Some(floor_path) = &args.floor {
        let text = std::fs::read_to_string(floor_path)
            .map_err(|e| format!("cannot read floor file {floor_path}: {e}"))?;
        violations.extend(Floors::parse(&text).check(&outcome, &rec));
    }
    if args.strict {
        if !rec.grid_mismatches.is_empty() {
            violations.push(format!(
                "strict: verb-grid mismatches: {:?}",
                rec.grid_mismatches
            ));
        }
        if rec.max_abs_bucket_delta() > 1 {
            violations.push(format!(
                "strict: client/server quantiles disagree by {} buckets",
                rec.max_abs_bucket_delta()
            ));
        }
        if outcome.transport_errors > 0 {
            violations.push(format!(
                "strict: {} transport errors",
                outcome.transport_errors
            ));
        }
    }

    if let Some(server) = own_server {
        server.shutdown();
    }
    Ok((json, violations))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok((json, violations)) => {
            if let Err(e) = std::fs::write(&args.out, &json) {
                eprintln!("mcfs-loadgen: cannot write {}: {e}", args.out);
                return ExitCode::FAILURE;
            }
            eprintln!("mcfs-loadgen: wrote {}", args.out);
            if violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    eprintln!("mcfs-loadgen: SLO violation: {v}");
                }
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("mcfs-loadgen: {msg}");
            ExitCode::FAILURE
        }
    }
}
