//! Chaos primitives: the fault-injection building blocks `tests/load_slo.rs`
//! composes into scenarios — abrupt connection kills mid-request, raw
//! malformed/oversized/truncated frames, and deadline storms.
//!
//! These work at the raw TCP layer on purpose: a well-behaved [`Client`]
//! cannot *produce* a truncated frame or vanish mid-solve, and the whole
//! point is to prove the server survives clients that do.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};

use mcfs_server::{Client, ClientError, Reply, Request};

/// Connect a raw socket and consume the greeting line, returning the
/// stream plus a buffered reader on its read half.
fn raw_connect(addr: &str) -> std::io::Result<(TcpStream, BufReader<TcpStream>)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut greeting = String::new();
    reader.read_line(&mut greeting)?;
    Ok((stream, reader))
}

/// Send a request frame and then drop the socket without reading the
/// reply — the "client dies mid-solve" fault. The server's connection
/// thread discovers the death when its reply write fails; the session and
/// its worker must shrug it off.
pub fn kill_mid_request(addr: &str, frame: &str) -> std::io::Result<()> {
    let (mut stream, _reader) = raw_connect(addr)?;
    stream.write_all(frame.as_bytes())?;
    stream.flush()?;
    // Hard kill: both halves at once, no clean EOF handshake. Dropping
    // the socket right after the request leaves the reply unread and
    // undeliverable.
    let _ = stream.shutdown(Shutdown::Both);
    Ok(())
}

/// What came back from a raw byte-level exchange.
#[derive(Debug, Default)]
pub struct RawExchange {
    /// Every line the server sent before closing or going quiet.
    pub lines: Vec<String>,
    /// `true` when the server hung up (EOF) after its replies — the
    /// expected contract for fatal protocol errors like truncation.
    pub closed: bool,
}

impl RawExchange {
    /// Whether any reply line starts with `err <code>`.
    pub fn has_err(&self, code: &str) -> bool {
        let prefix = format!("err {code}");
        self.lines.iter().any(|l| l.starts_with(&prefix))
    }
}

/// Write raw bytes (any malformed framing you like), half-close the write
/// side, and collect everything the server says until EOF.
pub fn raw_exchange(addr: &str, bytes: &[u8]) -> std::io::Result<RawExchange> {
    let (mut stream, mut reader) = raw_connect(addr)?;
    stream.write_all(bytes)?;
    stream.flush()?;
    stream.shutdown(Shutdown::Write)?;
    let mut out = RawExchange::default();
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    out.lines = text.lines().map(str::to_owned).collect();
    out.closed = true; // read_to_string only returns on EOF
    Ok(out)
}

/// Outcome tallies of a deadline storm.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct StormOutcome {
    /// `timeout` replies — the request expired while queued.
    pub timeouts: u64,
    /// `ok` replies — the request won the race to a worker.
    pub ok: u64,
    /// `busy` sheds.
    pub busy: u64,
    /// `err` replies (should stay zero: an expired request must time out,
    /// not execute and fail).
    pub err: u64,
}

/// Fire `n` back-to-back `SOLVE deadline_ms=<deadline_ms>` requests at a
/// session. With `deadline_ms = 0` every request is already expired when
/// a worker dequeues it, so a correct server answers `timeout` for each
/// without running the solver.
pub fn deadline_storm(
    client: &mut Client,
    session: &str,
    n: usize,
    deadline_ms: u64,
) -> Result<StormOutcome, ClientError> {
    let mut out = StormOutcome::default();
    for _ in 0..n {
        let reply = client.request(&Request::Solve {
            session: session.to_owned(),
            deadline_ms: Some(deadline_ms),
        })?;
        match reply {
            Reply::Ok { .. } => out.ok += 1,
            Reply::Busy { .. } => out.busy += 1,
            Reply::Timeout { .. } => out.timeouts += 1,
            Reply::Err { .. } => out.err += 1,
        }
    }
    Ok(out)
}

/// `SOLVE` a session and return its objective, for before/after
/// corruption checks around a chaos scenario.
pub fn solve_objective(client: &mut Client, session: &str) -> Result<u64, ClientError> {
    let reply = client.solve(session)?;
    reply
        .kv("objective")
        .and_then(|v| v.parse().ok())
        .ok_or(ClientError::Rejected(reply.clone()))
}
