//! A minimal parser for the server's Prometheus text exposition, targeted
//! at the families reconciliation needs.
//!
//! `mcfs-obs` renders version 0.0.4 text with simple label values (verb and
//! outcome tokens, `le` bounds) that never contain escaped quotes, so a
//! hand-rolled line parser is sufficient — and keeps the load generator
//! free of external dependencies like the rest of the workspace.

use std::collections::HashMap;

use crate::hist::BUCKETS;

/// The server-side counters reconciliation compares against, parsed from
/// one `METRICS format=prometheus` (or `GET /metrics`) document.
#[derive(Clone, Debug, Default)]
pub struct ServerMetrics {
    /// `mcfs_server_requests_total{verb,outcome}`, keyed by `(verb, outcome)`.
    pub requests: HashMap<(String, String), u64>,
    /// Non-cumulative per-bucket counts of `mcfs_server_request_latency_us`.
    pub latency_buckets: Vec<u64>,
    /// `mcfs_server_request_latency_us_count`.
    pub latency_count: u64,
    /// `mcfs_server_request_latency_us_sum` (microseconds).
    pub latency_sum_us: u64,
    /// Every other plain `mcfs_server_*` counter/gauge, keyed by name.
    pub counters: HashMap<String, u64>,
}

impl ServerMetrics {
    /// The count for one cell of the verb × outcome grid (0 when absent).
    pub fn requests_for(&self, verb: &str, outcome: &str) -> u64 {
        self.requests
            .get(&(verb.to_owned(), outcome.to_owned()))
            .copied()
            .unwrap_or(0)
    }

    /// A plain counter by family name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Subtract a baseline snapshot, leaving only the traffic between the
    /// two scrapes. Saturates at zero so a racing scrape cannot underflow.
    pub fn delta_from(&self, base: &ServerMetrics) -> ServerMetrics {
        let mut out = self.clone();
        for (key, v) in &mut out.requests {
            *v = v.saturating_sub(base.requests.get(key).copied().unwrap_or(0));
        }
        for (i, v) in out.latency_buckets.iter_mut().enumerate() {
            *v = v.saturating_sub(base.latency_buckets.get(i).copied().unwrap_or(0));
        }
        out.latency_count = out.latency_count.saturating_sub(base.latency_count);
        out.latency_sum_us = out.latency_sum_us.saturating_sub(base.latency_sum_us);
        for (key, v) in &mut out.counters {
            *v = v.saturating_sub(base.counters.get(key).copied().unwrap_or(0));
        }
        out
    }
}

/// Parse one metric line into `(name, labels, value)`; `None` for
/// comments, blanks, and lines outside the grammar we emit.
#[allow(clippy::type_complexity)]
fn parse_line(line: &str) -> Option<(&str, Vec<(&str, &str)>, u64)> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let (head, value) = line.rsplit_once(' ')?;
    // Histogram sums are integers in our exposition; tolerate a float tail.
    let value = value.parse::<u64>().ok().or_else(|| {
        value
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite() && *v >= 0.0)
            .map(|v| v as u64)
    })?;
    let (name, labels) = match head.split_once('{') {
        None => (head, Vec::new()),
        Some((name, rest)) => {
            let rest = rest.strip_suffix('}')?;
            let mut labels = Vec::new();
            for part in rest.split(',') {
                let (k, v) = part.split_once('=')?;
                labels.push((k, v.trim_matches('"')));
            }
            (name, labels)
        }
    };
    Some((name, labels, value))
}

/// Parse a full Prometheus document into the families reconciliation uses.
///
/// Histogram `_bucket` lines arrive cumulative and in ascending `le`
/// order (that is how `mcfs-obs` renders them); they are de-cumulated
/// back into per-bucket counts so they line up with
/// [`crate::hist::LatencyHist::bucket_counts`].
pub fn parse_server_metrics(text: &str) -> ServerMetrics {
    let mut out = ServerMetrics::default();
    let mut latency_cumulative: Vec<u64> = Vec::with_capacity(BUCKETS);
    for line in text.lines() {
        let Some((name, labels, value)) = parse_line(line) else {
            continue;
        };
        match name {
            "mcfs_server_requests_total" => {
                let verb = labels
                    .iter()
                    .find(|(k, _)| *k == "verb")
                    .map(|(_, v)| *v)
                    .unwrap_or("");
                let outcome = labels
                    .iter()
                    .find(|(k, _)| *k == "outcome")
                    .map(|(_, v)| *v)
                    .unwrap_or("");
                *out.requests
                    .entry((verb.to_owned(), outcome.to_owned()))
                    .or_insert(0) += value;
            }
            "mcfs_server_request_latency_us_bucket" => latency_cumulative.push(value),
            "mcfs_server_request_latency_us_count" => out.latency_count = value,
            "mcfs_server_request_latency_us_sum" => out.latency_sum_us = value,
            other if other.starts_with("mcfs_server_") && labels.is_empty() => {
                out.counters.insert(other.to_owned(), value);
            }
            _ => {}
        }
    }
    let mut prev = 0u64;
    out.latency_buckets = latency_cumulative
        .iter()
        .map(|&cum| {
            let b = cum.saturating_sub(prev);
            prev = cum;
            b
        })
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_grid_histogram_and_counters() {
        let text = "\
# HELP mcfs_server_requests_total Requests by verb and outcome
# TYPE mcfs_server_requests_total counter
mcfs_server_requests_total{verb=\"solve\",outcome=\"ok\"} 7
mcfs_server_requests_total{verb=\"edit\",outcome=\"busy\"} 2
# TYPE mcfs_server_request_latency_us histogram
mcfs_server_request_latency_us_bucket{le=\"0\"} 0
mcfs_server_request_latency_us_bucket{le=\"1\"} 3
mcfs_server_request_latency_us_bucket{le=\"3\"} 5
mcfs_server_request_latency_us_bucket{le=\"+Inf\"} 9
mcfs_server_request_latency_us_sum 1234
mcfs_server_request_latency_us_count 9
mcfs_server_events_dropped_total 4
";
        let m = parse_server_metrics(text);
        assert_eq!(m.requests_for("solve", "ok"), 7);
        assert_eq!(m.requests_for("edit", "busy"), 2);
        assert_eq!(m.requests_for("edit", "ok"), 0);
        assert_eq!(m.latency_buckets, vec![0, 3, 2, 4]);
        assert_eq!(m.latency_count, 9);
        assert_eq!(m.latency_sum_us, 1234);
        assert_eq!(m.counter("mcfs_server_events_dropped_total"), 4);
    }

    #[test]
    fn delta_subtracts_a_baseline() {
        let before = parse_server_metrics(
            "mcfs_server_requests_total{verb=\"solve\",outcome=\"ok\"} 3\nmcfs_server_events_dropped_total 1\n",
        );
        let after = parse_server_metrics(
            "mcfs_server_requests_total{verb=\"solve\",outcome=\"ok\"} 10\nmcfs_server_events_dropped_total 5\n",
        );
        let d = after.delta_from(&before);
        assert_eq!(d.requests_for("solve", "ok"), 7);
        assert_eq!(d.counter("mcfs_server_events_dropped_total"), 4);
    }
}
