//! Reconciliation of client-side observations against server metrics, the
//! `BENCH_LOAD.json` report, and the stored-floor SLO gate.
//!
//! The JSON is hand-rolled string building (the workspace carries no
//! serde), matching the `perf-report` idiom in `mcfs-bench`. Floors live
//! in a plain `key value` text file so CI can diff them and a human can
//! edit them without tooling.

use std::collections::BTreeMap;

use crate::hist::{bucket_upper_us, quantile_bucket, LatencyHist};
use crate::prom::ServerMetrics;
use crate::runner::RunOutcome;
use crate::workload::Profile;

/// The verbs that flow through the worker queue (and therefore appear in
/// the server latency histogram); WATCH/UNWATCH are handled inline on the
/// connection and METRICS is answered inline by admission.
pub const QUEUED_VERBS: [&str; 7] = [
    "open",
    "edit",
    "solve",
    "assignment",
    "stats",
    "snapshot",
    "close",
];

/// All verbs the grid reconciliation compares.
pub const GRID_VERBS: [&str; 9] = [
    "open",
    "edit",
    "solve",
    "assignment",
    "stats",
    "snapshot",
    "close",
    "watch",
    "unwatch",
];

/// Client vs. server comparison for one load run.
#[derive(Clone, Debug, Default)]
pub struct Reconciliation {
    /// Cells where the client count disagrees with the server counter,
    /// as `verb.outcome client=<n> server=<m>` strings. Empty on a clean
    /// run against a dedicated server.
    pub grid_mismatches: Vec<String>,
    /// Client-side worker-executed observations.
    pub client_count: u64,
    /// Server-side `mcfs_server_request_latency_us_count`.
    pub server_count: u64,
    /// Client quantile buckets (p50, p99, p999).
    pub client_buckets: [Option<usize>; 3],
    /// Server quantile buckets (p50, p99, p999).
    pub server_buckets: [Option<usize>; 3],
}

impl Reconciliation {
    /// Signed client-minus-server bucket deltas for (p50, p99, p999);
    /// `None` when either side is empty.
    pub fn bucket_deltas(&self) -> [Option<i64>; 3] {
        let mut out = [None; 3];
        for (i, slot) in out.iter_mut().enumerate() {
            if let (Some(c), Some(s)) = (self.client_buckets[i], self.server_buckets[i]) {
                *slot = Some(c as i64 - s as i64);
            }
        }
        out
    }

    /// Largest absolute quantile bucket delta (0 when nothing compared).
    pub fn max_abs_bucket_delta(&self) -> i64 {
        self.bucket_deltas()
            .iter()
            .flatten()
            .map(|d| d.abs())
            .max()
            .unwrap_or(0)
    }
}

const QUANTILES: [f64; 3] = [0.50, 0.99, 0.999];

/// Compare a run's client-side view against the server's Prometheus
/// counters (pass a [`ServerMetrics::delta_from`] result when the server
/// served traffic before the run).
pub fn reconcile(run: &RunOutcome, server: &ServerMetrics) -> Reconciliation {
    let mut rec = Reconciliation::default();
    for verb in GRID_VERBS {
        let stats = run.verb(verb);
        for (outcome, client) in [
            ("ok", stats.ok),
            ("busy", stats.busy),
            ("timeout", stats.timeout),
            ("err", stats.err),
        ] {
            let server_n = server.requests_for(verb, outcome);
            if client != server_n {
                rec.grid_mismatches.push(format!(
                    "{verb}.{outcome} client={client} server={server_n}"
                ));
            }
        }
    }
    rec.client_count = run.queued_hist.count();
    rec.server_count = server.latency_count;
    for (i, q) in QUANTILES.iter().enumerate() {
        rec.client_buckets[i] = run.queued_hist.quantile_bucket(*q);
        rec.server_buckets[i] = quantile_bucket(&server.latency_buckets, server.latency_count, *q);
    }
    rec
}

/// One micro-benchmark result pinned into the report (the before/after
/// evidence for a server-side fix).
#[derive(Clone, Debug)]
pub struct MicroBench {
    /// Stable key, e.g. `frame_write_batching`.
    pub name: &'static str,
    /// One-line description of what before/after mean.
    pub detail: &'static str,
    /// Nanoseconds per operation, old path.
    pub before_ns: f64,
    /// Nanoseconds per operation, new path.
    pub after_ns: f64,
}

impl MicroBench {
    /// Speedup factor (before / after); 0 when after is degenerate.
    pub fn speedup(&self) -> f64 {
        if self.after_ns <= 0.0 {
            0.0
        } else {
            self.before_ns / self.after_ns
        }
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "0.00".to_owned()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn quantile_line(hist: &LatencyHist) -> String {
    format!(
        "{{\"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}}}",
        hist.count(),
        hist.quantile_us(0.50),
        hist.quantile_us(0.99),
        hist.quantile_us(0.999)
    )
}

/// Render the full `BENCH_LOAD.json` document.
pub fn render_json(
    profile: &Profile,
    run: &RunOutcome,
    rec: &Reconciliation,
    micros: &[MicroBench],
    notes: &[String],
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str("  \"schema\": \"mcfs-bench-load v1\",\n");
    out.push_str(&format!(
        "  \"profile\": {{\"mix\": {}, \"connections\": {}, \"sessions\": {}, \"watchers\": {}, \"requests_per_conn\": {}, \"rate_hz\": {}, \"seed\": {}, \"instance_side\": {}}},\n",
        json_str(profile.mix.token()),
        profile.connections,
        profile.sessions,
        profile.watchers,
        profile.requests_per_conn,
        fmt_f64(profile.rate_hz),
        profile.seed,
        profile.instance_side
    ));
    out.push_str(&format!(
        "  \"totals\": {{\"wall_ms\": {}, \"ok\": {}, \"busy\": {}, \"timeout\": {}, \"err\": {}, \"transport_errors\": {}, \"throughput_ok_per_s\": {}, \"events\": {}, \"dropped_markers\": {}}},\n",
        run.wall.as_millis(),
        run.ok_total(),
        run.busy_total(),
        run.verbs.values().map(|v| v.timeout).sum::<u64>(),
        run.verbs.values().map(|v| v.err).sum::<u64>(),
        run.transport_errors,
        fmt_f64(run.throughput_ok_per_s()),
        run.events,
        run.dropped_marker_sum
    ));
    out.push_str("  \"verbs\": {\n");
    let lines: Vec<String> = run
        .verbs
        .iter()
        .map(|(verb, stats)| {
            format!(
                "    {}: {{\"ok\": {}, \"busy\": {}, \"timeout\": {}, \"err\": {}, \"latency\": {}}}",
                json_str(verb),
                stats.ok,
                stats.busy,
                stats.timeout,
                stats.err,
                quantile_line(&stats.hist)
            )
        })
        .collect();
    out.push_str(&lines.join(",\n"));
    out.push_str("\n  },\n");
    out.push_str(&format!(
        "  \"queued_latency\": {},\n",
        quantile_line(&run.queued_hist)
    ));
    let deltas = rec.bucket_deltas();
    out.push_str(&format!(
        "  \"reconciliation\": {{\"client_count\": {}, \"server_count\": {}, \"bucket_delta_p50\": {}, \"bucket_delta_p99\": {}, \"bucket_delta_p999\": {}, \"grid_mismatches\": [{}]}},\n",
        rec.client_count,
        rec.server_count,
        deltas[0].map_or("null".to_owned(), |d| d.to_string()),
        deltas[1].map_or("null".to_owned(), |d| d.to_string()),
        deltas[2].map_or("null".to_owned(), |d| d.to_string()),
        rec.grid_mismatches
            .iter()
            .map(|m| json_str(m))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"micro\": {\n");
    let micro_lines: Vec<String> = micros
        .iter()
        .map(|m| {
            format!(
                "    {}: {{\"detail\": {}, \"before_ns_per_op\": {}, \"after_ns_per_op\": {}, \"speedup\": {}}}",
                json_str(m.name),
                json_str(m.detail),
                fmt_f64(m.before_ns),
                fmt_f64(m.after_ns),
                fmt_f64(m.speedup())
            )
        })
        .collect();
    out.push_str(&micro_lines.join(",\n"));
    out.push_str("\n  },\n");
    out.push_str(&format!(
        "  \"notes\": [{}]\n",
        notes
            .iter()
            .map(|n| json_str(n))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("}\n");
    out
}

/// Stored SLO floors, parsed from `key value` lines (`#` comments).
///
/// Known keys: `min_ok_per_s` (ok-throughput must not sink below),
/// `max_p99_solve_us` (client p99 solve latency must not rise above),
/// `max_transport_errors`, `max_grid_mismatches`,
/// `max_reconciliation_bucket_delta`.
#[derive(Clone, Debug, Default)]
pub struct Floors {
    values: BTreeMap<String, f64>,
}

impl Floors {
    /// Parse a floor file's text.
    pub fn parse(text: &str) -> Floors {
        let mut values = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((k, v)) = line.split_once(char::is_whitespace) {
                if let Ok(v) = v.trim().parse::<f64>() {
                    values.insert(k.to_owned(), v);
                }
            }
        }
        Floors { values }
    }

    /// A floor by key.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.values.get(key).copied()
    }

    /// Check a run against every stored floor; returns the list of
    /// violations (empty = the gate passes).
    pub fn check(&self, run: &RunOutcome, rec: &Reconciliation) -> Vec<String> {
        let mut violations = Vec::new();
        if let Some(min) = self.get("min_ok_per_s") {
            let got = run.throughput_ok_per_s();
            if got < min {
                violations.push(format!(
                    "ok throughput {got:.1}/s below the floor of {min:.1}/s"
                ));
            }
        }
        if let Some(max) = self.get("max_p99_solve_us") {
            let got = run.verb("solve").hist.quantile_us(0.99);
            if got as f64 > max {
                violations.push(format!(
                    "p99 solve latency {got}us above the ceiling of {max:.0}us"
                ));
            }
        }
        if let Some(max) = self.get("max_transport_errors") {
            if run.transport_errors as f64 > max {
                violations.push(format!(
                    "{} transport errors exceed the allowance of {max:.0}",
                    run.transport_errors
                ));
            }
        }
        if let Some(max) = self.get("max_grid_mismatches") {
            if rec.grid_mismatches.len() as f64 > max {
                violations.push(format!(
                    "{} verb-grid mismatches exceed the allowance of {max:.0}: {:?}",
                    rec.grid_mismatches.len(),
                    rec.grid_mismatches
                ));
            }
        }
        if let Some(max) = self.get("max_reconciliation_bucket_delta") {
            let got = rec.max_abs_bucket_delta();
            if got as f64 > max {
                violations.push(format!(
                    "quantile bucket delta {got} exceeds the allowance of {max:.0}"
                ));
            }
        }
        violations
    }
}

/// A human-readable latency label for a bucket index (e.g. `< 1ms`).
pub fn bucket_label(i: usize) -> String {
    let upper = bucket_upper_us(i);
    if upper == u64::MAX {
        format!(">= {}us", 1u64 << (crate::hist::BUCKETS - 2))
    } else {
        format!("< {upper}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floors_parse_and_gate() {
        let floors = Floors::parse(
            "# comment\nmin_ok_per_s 100\nmax_p99_solve_us 2000000\nmax_transport_errors 0\n",
        );
        assert_eq!(floors.get("min_ok_per_s"), Some(100.0));
        let run = RunOutcome::default(); // zero throughput: violates the floor
        let rec = Reconciliation::default();
        let violations = floors.check(&run, &rec);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("ok throughput"));
    }

    #[test]
    fn json_report_is_balanced_and_contains_the_sections() {
        let profile = Profile::default();
        let run = RunOutcome::default();
        let rec = Reconciliation::default();
        let micros = [MicroBench {
            name: "demo",
            detail: "x",
            before_ns: 100.0,
            after_ns: 50.0,
        }];
        let json = render_json(&profile, &run, &rec, &micros, &["note".to_owned()]);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "braces balance"
        );
        for key in [
            "\"profile\"",
            "\"totals\"",
            "\"queued_latency\"",
            "\"reconciliation\"",
            "\"micro\"",
            "\"notes\"",
            "\"speedup\": 2.00",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn reconcile_flags_grid_disagreement() {
        use crate::prom::parse_server_metrics;
        let run = RunOutcome::default();
        let server =
            parse_server_metrics("mcfs_server_requests_total{verb=\"solve\",outcome=\"ok\"} 5\n");
        let rec = reconcile(&run, &server);
        assert!(rec
            .grid_mismatches
            .iter()
            .any(|m| m.contains("solve.ok client=0 server=5")));
    }
}
