//! Workload shapes: verb mixes, the run profile, and the deterministic
//! per-connection request schedule.
//!
//! Every connection derives its own `StdRng` from `profile.seed` and its
//! connection index, so a run is reproducible end-to-end: same seed, same
//! arrival times, same verb sequence — independent of how the OS schedules
//! the threads that replay it. Arrivals are Poisson (exponential
//! inter-arrival times at `rate_hz` per connection), the standard model
//! for open-loop request traffic.

use mcfs::McfsInstance;
use mcfs_graph::GraphBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One replayable action against a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// `SOLVE` — the expensive verb, queue pressure comes from here.
    Solve,
    /// `EDIT` — alternating add/remove customer scripts.
    Edit,
    /// `STATS` — cheap read of the last run.
    Stats,
    /// `ASSIGNMENT` — reads the full solution payload.
    Assignment,
    /// `SNAPSHOT` — checkpoint text (solves first when edited).
    Snapshot,
}

/// Named verb mixes, selectable as `--mix <token>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mix {
    /// Solve-dominated: the worker pool is the bottleneck.
    SolveHeavy,
    /// Edit-dominated: exercises warm re-solves and payload parsing.
    EditHeavy,
    /// Read-dominated: cheap verbs, the wire is the bottleneck.
    ReadHeavy,
    /// A balanced blend of all five verbs.
    Mixed,
}

impl Mix {
    /// Parse a `--mix` token.
    pub fn from_token(s: &str) -> Option<Mix> {
        match s {
            "solve-heavy" => Some(Mix::SolveHeavy),
            "edit-heavy" => Some(Mix::EditHeavy),
            "read-heavy" => Some(Mix::ReadHeavy),
            "mixed" => Some(Mix::Mixed),
            _ => None,
        }
    }

    /// The canonical token for this mix.
    pub fn token(self) -> &'static str {
        match self {
            Mix::SolveHeavy => "solve-heavy",
            Mix::EditHeavy => "edit-heavy",
            Mix::ReadHeavy => "read-heavy",
            Mix::Mixed => "mixed",
        }
    }

    /// Relative verb weights.
    pub fn weights(self) -> &'static [(Action, u32)] {
        match self {
            Mix::SolveHeavy => &[
                (Action::Solve, 60),
                (Action::Edit, 15),
                (Action::Stats, 10),
                (Action::Assignment, 10),
                (Action::Snapshot, 5),
            ],
            Mix::EditHeavy => &[
                (Action::Edit, 50),
                (Action::Solve, 30),
                (Action::Stats, 10),
                (Action::Assignment, 10),
            ],
            Mix::ReadHeavy => &[
                (Action::Stats, 40),
                (Action::Assignment, 35),
                (Action::Solve, 20),
                (Action::Snapshot, 5),
            ],
            Mix::Mixed => &[
                (Action::Solve, 30),
                (Action::Edit, 25),
                (Action::Stats, 20),
                (Action::Assignment, 20),
                (Action::Snapshot, 5),
            ],
        }
    }
}

/// The complete shape of one load run.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Verb mix.
    pub mix: Mix,
    /// Concurrent connections replaying schedules.
    pub connections: usize,
    /// Sessions opened up front; connection `i` drives session
    /// `s{i % sessions}`, so `connections > sessions` means shared
    /// sessions and real cross-connection queue contention.
    pub sessions: usize,
    /// The first `watchers` connections also `WATCH` their session for the
    /// whole run, so event pumps share the wire with replies.
    pub watchers: usize,
    /// Requests per connection.
    pub requests_per_conn: usize,
    /// Per-connection Poisson arrival rate (requests/second).
    pub rate_hz: f64,
    /// Master seed; every derived schedule is a pure function of it.
    pub seed: u64,
    /// Ring capacity passed to `WATCH buffer=<n>` (None = server default).
    pub watch_buffer: Option<usize>,
    /// Optional `deadline_ms` stamped on SOLVE/EDIT/SNAPSHOT requests.
    pub deadline_ms: Option<u64>,
    /// Side length of the square-grid workload instance
    /// ([`workload_instance_text_sized`]). 3 is the tiny protocol-smoke
    /// fixture; larger sides make each solve carry real work, which is
    /// what lets client and server latency histograms reconcile — with
    /// microsecond handlers the client would mostly measure its own
    /// round-trip floor.
    pub instance_side: u32,
    /// Prefix for generated session names (`<prefix><n>`). In-process runs
    /// always target a fresh server, so the default `"s"` is fine; when
    /// pointing at a long-lived external server, use a per-run prefix so
    /// setup `OPEN`s do not collide with sessions a previous run left
    /// behind (`OPEN` of an existing name is an error by design).
    pub session_prefix: String,
}

impl Default for Profile {
    fn default() -> Self {
        Profile {
            mix: Mix::SolveHeavy,
            connections: 64,
            sessions: 16,
            watchers: 8,
            requests_per_conn: 10,
            rate_hz: 20.0,
            seed: 42,
            watch_buffer: None,
            deadline_ms: None,
            instance_side: 3,
            session_prefix: "s".to_owned(),
        }
    }
}

impl Profile {
    /// Session name driven by connection `conn`.
    pub fn session_for(&self, conn: usize) -> String {
        format!("{}{}", self.session_prefix, conn % self.sessions.max(1))
    }

    /// Total requests the replay phase will issue (excluding setup).
    pub fn total_requests(&self) -> usize {
        self.connections * self.requests_per_conn
    }
}

/// One scheduled request: when (µs after the start barrier) and what.
#[derive(Clone, Copy, Debug)]
pub struct PlannedRequest {
    /// Offset from the run start, in microseconds.
    pub at_us: u64,
    /// The verb to issue.
    pub action: Action,
}

/// The deterministic schedule for connection `conn`: Poisson arrivals at
/// `rate_hz`, verbs drawn from the mix weights.
pub fn schedule_for(profile: &Profile, conn: usize) -> Vec<PlannedRequest> {
    let mut rng = StdRng::seed_from_u64(
        profile
            .seed
            .wrapping_add((conn as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
    );
    let weights = profile.mix.weights();
    let total: u32 = weights.iter().map(|&(_, w)| w).sum();
    let mut at_us = 0u64;
    (0..profile.requests_per_conn)
        .map(|_| {
            // Exponential inter-arrival: -ln(1-u)/λ seconds.
            let u: f64 = rng.random::<f64>();
            let gap_s = -(1.0 - u).ln() / profile.rate_hz.max(1e-6);
            at_us += (gap_s * 1e6) as u64;
            let mut pick = rng.random_range(0..total);
            let action = weights
                .iter()
                .find(|&&(_, w)| {
                    if pick < w {
                        true
                    } else {
                        pick -= w;
                        false
                    }
                })
                .map(|&(a, _)| a)
                .expect("weights cover the draw");
            PlannedRequest { at_us, action }
        })
        .collect()
}

/// The shared workload instance: the facade crate's 3×3 grid with four
/// customers, but with capacity headroom (each facility takes 100) so the
/// run's concurrent `AddCustomer` edits never push a session into
/// infeasibility regardless of interleaving.
pub fn workload_instance_text() -> String {
    workload_instance_text_sized(3)
}

/// A `side`×`side` grid workload instance (minimum side 3):
///
/// * customers on every even-row/even-column node — 4 for side 3 (the
///   classic fixture corners), growing quadratically with the side;
/// * facilities down the middle column (every row for small sides, every
///   other row beyond), each with capacity `side² + 1024` — enough to
///   absorb every customer plus any number of concurrent `AddCustomer`
///   edits a load run can realistically issue, so no interleaving pushes
///   a session into infeasibility;
/// * `k` = half the facilities (at least 2), so selection is a real
///   choice.
///
/// Side 3 reproduces the classic 3×3 smoke fixture: customers at the
/// corners, facilities 1/4/7, `k = 2`.
pub fn workload_instance_text_sized(side: u32) -> String {
    let side = side.max(3);
    let n = side * side;
    let mut b = GraphBuilder::new(n as usize);
    for r in 0..side {
        for c in 0..side {
            let v = r * side + c;
            if c + 1 < side {
                b.add_edge(v, v + 1, 100);
            }
            if r + 1 < side {
                b.add_edge(v, v + side, 100);
            }
        }
    }
    let g = b.build();
    let customers: Vec<u32> = (0..side)
        .step_by(2)
        .flat_map(|r| (0..side).step_by(2).map(move |c| r * side + c))
        .collect();
    let mid = side / 2;
    let row_step = if side <= 4 { 1 } else { 2 };
    let facilities: Vec<u32> = (0..side)
        .step_by(row_step)
        .map(|r| r * side + mid)
        .collect();
    let k = (facilities.len() / 2).max(2);
    let capacity = n + 1024;
    let mut builder = McfsInstance::builder(&g).customers(customers);
    for f in facilities {
        builder = builder.facility(f, capacity);
    }
    let inst = builder
        .k(k)
        .build()
        .expect("the workload fixture is well-formed");
    let mut buf = Vec::new();
    mcfs_io::write_instance(&mut buf, &inst).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("instance text is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_distinct_per_connection() {
        let p = Profile::default();
        let a1 = schedule_for(&p, 3);
        let a2 = schedule_for(&p, 3);
        assert_eq!(a1.len(), p.requests_per_conn);
        assert!(a1
            .iter()
            .zip(a2.iter())
            .all(|(x, y)| x.at_us == y.at_us && x.action == y.action));
        let b = schedule_for(&p, 4);
        assert!(
            a1.iter()
                .zip(b.iter())
                .any(|(x, y)| x.at_us != y.at_us || x.action != y.action),
            "different connections draw different schedules"
        );
    }

    #[test]
    fn arrivals_are_monotone_and_roughly_at_rate() {
        let p = Profile {
            requests_per_conn: 200,
            rate_hz: 100.0,
            ..Profile::default()
        };
        let s = schedule_for(&p, 0);
        assert!(s.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        let span_s = s.last().unwrap().at_us as f64 / 1e6;
        let rate = s.len() as f64 / span_s;
        assert!(
            (rate - 100.0).abs() < 40.0,
            "empirical rate {rate:.1}/s should be near 100/s"
        );
    }

    #[test]
    fn every_mix_token_round_trips() {
        for mix in [Mix::SolveHeavy, Mix::EditHeavy, Mix::ReadHeavy, Mix::Mixed] {
            assert_eq!(Mix::from_token(mix.token()), Some(mix));
            assert!(!mix.weights().is_empty());
        }
        assert_eq!(Mix::from_token("nope"), None);
    }

    #[test]
    fn the_workload_instance_parses_and_solves() {
        use mcfs::Solver;
        let text = workload_instance_text();
        let owned = mcfs_io::read_instance(text.as_bytes()).unwrap();
        let inst = owned.instance().unwrap();
        let sol = mcfs::Wma::new().solve(&inst).unwrap();
        inst.verify(&sol).unwrap();
    }
}
