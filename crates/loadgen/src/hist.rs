//! Client-side log2 latency histogram, bucket-compatible with the server.
//!
//! The server records request latency into a 28-bucket log2 histogram
//! (`mcfs_server_request_latency_us`, see `mcfs-server`'s metrics module):
//! value `v` lands in bucket `0` when `v == 0`, else in bucket
//! `min(64 - v.leading_zeros(), 27)`. The load generator observes the same
//! quantities from the client side of the wire with the *same* bucket rule,
//! which is what makes a bucket-level reconciliation between the two ends
//! meaningful: a client-side quantile and its server-side counterpart must
//! land within ±1 bucket of each other once queueing is the dominant term.

/// Number of log2 buckets; mirrors the server histogram exactly.
pub const BUCKETS: usize = 28;

/// Bucket index for a microsecond value — the server's rule, verbatim.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The (exclusive) upper bound of a bucket in microseconds; the last
/// bucket is open-ended and reports `u64::MAX`.
pub fn bucket_upper_us(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// A plain (single-threaded) log2 histogram of microsecond latencies.
///
/// Unlike the server's atomic registry histogram this one is owned by one
/// connection thread and merged after the run, so it needs no atomics.
#[derive(Clone, Debug, Default)]
pub struct LatencyHist {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> LatencyHist {
        LatencyHist {
            buckets: [0; BUCKETS],
            count: 0,
            sum_us: 0,
        }
    }

    /// Record one latency observation in microseconds.
    pub fn observe(&mut self, us: u64) {
        self.buckets[bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (microseconds, saturating).
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Per-bucket (non-cumulative) counts.
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// The bucket index holding the `q`-quantile (`0.0 < q <= 1.0`), or
    /// `None` on an empty histogram: the smallest bucket whose cumulative
    /// count reaches `ceil(q * count)`.
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        quantile_bucket(&self.buckets, self.count, q)
    }

    /// The `q`-quantile as a microsecond upper bound (the top of its
    /// bucket); `0` on an empty histogram.
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.quantile_bucket(q).map_or(0, bucket_upper_us)
    }
}

/// Quantile-bucket rule shared with server-side (Prometheus-parsed)
/// bucket arrays: smallest index whose cumulative count reaches
/// `ceil(q * count)`.
pub fn quantile_bucket(buckets: &[u64], count: u64, q: f64) -> Option<usize> {
    if count == 0 {
        return None;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cum = 0u64;
    for (i, b) in buckets.iter().enumerate() {
        cum += b;
        if cum >= rank {
            return Some(i);
        }
    }
    Some(buckets.len().saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_rule_matches_the_server() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_walk_the_cumulative_counts() {
        let mut h = LatencyHist::new();
        for _ in 0..90 {
            h.observe(10); // bucket 4
        }
        for _ in 0..10 {
            h.observe(5000); // bucket 13
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_bucket(0.5), Some(4));
        assert_eq!(h.quantile_bucket(0.9), Some(4));
        assert_eq!(h.quantile_bucket(0.99), Some(13));
        assert_eq!(h.quantile_us(0.5), 1 << 4);
        assert_eq!(LatencyHist::new().quantile_bucket(0.5), None);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        a.observe(3);
        b.observe(3000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.bucket_counts()[bucket_of(3)], 1);
        assert_eq!(a.bucket_counts()[bucket_of(3000)], 1);
    }
}
