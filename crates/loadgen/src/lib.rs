//! # mcfs-loadgen
//!
//! Workload-replay load generator, chaos/fault-injection harness and SLO
//! reporting for the `mcfs-serve` serving stack.
//!
//! The pieces, bottom-up:
//!
//! * [`workload`] — verb mixes ([`Mix`]), the run shape ([`Profile`]) and
//!   the deterministic per-connection Poisson schedule: same seed, same
//!   arrival times and verb sequence, every run.
//! * [`hist`] — a client-side log2 latency histogram using the *same*
//!   bucket rule as the server's `mcfs_server_request_latency_us`, so the
//!   two ends of the wire can be reconciled bucket-for-bucket.
//! * [`runner`] — the replay engine: one thread per connection, a start
//!   barrier, outcome classification (`ok`/`busy`/`timeout`/`err`) and
//!   event/drop-marker accounting across watchers.
//! * [`prom`] — a parser for the server's Prometheus exposition, feeding
//!   [`report::reconcile`].
//! * [`report`] — client/server reconciliation, the `BENCH_LOAD.json`
//!   document, and the stored-floor SLO gate CI fails on.
//! * [`chaos`] — fault injection: connection kills mid-request, raw
//!   malformed/truncated frames, deadline storms.
//! * [`micro`] — before/after micro-benchmarks pinning the server fixes
//!   this harness motivated (write batching, parse-buffer reuse).
//!
//! The `mcfs-loadgen` binary ties these together; `tests/load_slo.rs` at
//! the workspace root composes the chaos primitives into asserted
//! invariants.

#![warn(missing_docs)]

pub mod chaos;
pub mod hist;
pub mod micro;
pub mod prom;
pub mod report;
pub mod runner;
pub mod workload;

pub use hist::LatencyHist;
pub use prom::{parse_server_metrics, ServerMetrics};
pub use report::{reconcile, render_json, Floors, MicroBench, Reconciliation};
pub use runner::{run, RunOutcome, Target, VerbStats};
pub use workload::{
    schedule_for, workload_instance_text, workload_instance_text_sized, Action, Mix,
    PlannedRequest, Profile,
};
