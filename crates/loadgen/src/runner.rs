//! The replay engine: spawn one thread per connection, replay each
//! connection's deterministic schedule against a live server, and fold the
//! per-connection observations into one [`RunOutcome`].
//!
//! Every request is classified by its reply — `ok` / `busy` / `timeout` /
//! `err` — and timed client-side (request write → reply parsed). Latencies
//! for *queued* verbs land both in a per-verb histogram and in one
//! combined histogram that deliberately excludes `busy`: the server only
//! records `mcfs_server_request_latency_us` for requests a worker actually
//! dequeued, so excluding shed requests is what makes the client and
//! server histograms describe the same population and reconcile
//! bucket-for-bucket.

use std::collections::BTreeMap;
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use mcfs::Edit;
use mcfs_server::protocol::text_to_lines;
use mcfs_server::{Client, ClientError, EventBody, OpenKind, Reply, Request, ServerHandle};

use crate::hist::LatencyHist;
use crate::workload::{schedule_for, workload_instance_text_sized, Action, Profile};

/// Where the load goes.
pub enum Target<'a> {
    /// In-process pipe connections against a [`ServerHandle`].
    InProcess(&'a ServerHandle),
    /// TCP connections to `host:port` (an external `mcfs-serve`).
    Tcp(String),
}

impl Target<'_> {
    /// Open one new connection to the target.
    pub fn connect(&self) -> Result<Client, ClientError> {
        match self {
            Target::InProcess(server) => server.connect(),
            Target::Tcp(addr) => Client::connect_tcp(addr),
        }
    }
}

/// Outcome counts and client-side latency for one verb.
#[derive(Clone, Debug, Default)]
pub struct VerbStats {
    /// `ok` replies.
    pub ok: u64,
    /// `busy` sheds.
    pub busy: u64,
    /// `timeout` replies (deadline expired while queued).
    pub timeout: u64,
    /// `err` replies.
    pub err: u64,
    /// Client-side round-trip latency of every non-`busy` reply, µs.
    pub hist: LatencyHist,
}

impl VerbStats {
    /// Total replies seen for this verb.
    pub fn total(&self) -> u64 {
        self.ok + self.busy + self.timeout + self.err
    }
}

/// Everything one load run observed from the client side of the wire.
#[derive(Clone, Debug, Default)]
pub struct RunOutcome {
    /// Wall time from the start barrier to the last connection joining.
    pub wall: Duration,
    /// Per-verb outcome counts and latency, keyed by verb token.
    pub verbs: BTreeMap<&'static str, VerbStats>,
    /// Combined latency of queued verbs (everything a worker executed:
    /// `ok` + `timeout` + `err`, excluding `busy` and the inline
    /// WATCH/UNWATCH/METRICS verbs) — the client twin of the server's
    /// `mcfs_server_request_latency_us`.
    pub queued_hist: LatencyHist,
    /// Event frames received across all watchers.
    pub events: u64,
    /// Sum of `dropped=<n>` marker counts across all watchers.
    pub dropped_marker_sum: u64,
    /// Connections that died on a transport or protocol error.
    pub transport_errors: u64,
}

impl RunOutcome {
    /// Stats for one verb (default-empty when the verb never ran).
    pub fn verb(&self, verb: &str) -> VerbStats {
        self.verbs.get(verb).cloned().unwrap_or_default()
    }

    /// Total `ok` replies across all verbs.
    pub fn ok_total(&self) -> u64 {
        self.verbs.values().map(|v| v.ok).sum()
    }

    /// Total `busy` sheds across all verbs.
    pub fn busy_total(&self) -> u64 {
        self.verbs.values().map(|v| v.busy).sum()
    }

    /// `ok` replies per second of wall time.
    pub fn throughput_ok_per_s(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.ok_total() as f64 / s
        }
    }

    fn merge_thread(&mut self, t: ThreadOutcome) {
        for (verb, stats) in t.verbs {
            let e = self.verbs.entry(verb).or_default();
            e.ok += stats.ok;
            e.busy += stats.busy;
            e.timeout += stats.timeout;
            e.err += stats.err;
            e.hist.merge(&stats.hist);
        }
        self.queued_hist.merge(&t.queued_hist);
        self.events += t.events;
        self.dropped_marker_sum += t.dropped_marker_sum;
        self.transport_errors += t.transport_errors;
    }
}

/// What one connection thread brings home.
#[derive(Default)]
struct ThreadOutcome {
    verbs: BTreeMap<&'static str, VerbStats>,
    queued_hist: LatencyHist,
    events: u64,
    dropped_marker_sum: u64,
    transport_errors: u64,
}

impl ThreadOutcome {
    /// Classify one reply; `queued` controls the combined histogram.
    fn record(&mut self, verb: &'static str, reply: &Reply, rtt_us: u64, queued: bool) {
        let stats = self.verbs.entry(verb).or_default();
        match reply {
            Reply::Ok { .. } => stats.ok += 1,
            Reply::Busy { .. } => stats.busy += 1,
            Reply::Timeout { .. } => stats.timeout += 1,
            Reply::Err { .. } => stats.err += 1,
        }
        if !matches!(reply, Reply::Busy { .. }) {
            stats.hist.observe(rtt_us);
            if queued {
                self.queued_hist.observe(rtt_us);
            }
        }
    }
}

/// Issue one request, classify and time it. Returns `false` when the
/// connection is dead (transport error) and the schedule should stop.
fn issue(out: &mut ThreadOutcome, client: &mut Client, request: &Request, queued: bool) -> bool {
    let verb = request.verb().name();
    let t0 = Instant::now();
    match client.request(request) {
        Ok(reply) => {
            out.record(verb, &reply, t0.elapsed().as_micros() as u64, queued);
            true
        }
        Err(_) => {
            out.transport_errors += 1;
            false
        }
    }
}

/// Build the wire request for one scheduled action. `add_next` alternates
/// per connection so every `RemoveCustomer` is preceded by this
/// connection's own `AddCustomer` — the session's customer count never
/// sinks below the fixture's four, whatever the cross-connection
/// interleaving, so edits never fail on an empty list.
fn request_for(
    action: Action,
    session: &str,
    conn: usize,
    add_next: &mut bool,
    deadline_ms: Option<u64>,
) -> Request {
    let session = session.to_owned();
    match action {
        Action::Solve => Request::Solve {
            session,
            deadline_ms,
        },
        Action::Edit => {
            let edits = if *add_next {
                vec![Edit::AddCustomer {
                    node: (conn % 9) as u32,
                }]
            } else {
                vec![Edit::RemoveCustomer { index: 0 }]
            };
            *add_next = !*add_next;
            Request::Edit {
                session,
                edits,
                deadline_ms,
            }
        }
        Action::Stats => Request::Stats { session },
        Action::Assignment => Request::Assignment { session },
        Action::Snapshot => Request::Snapshot {
            session,
            deadline_ms,
        },
    }
}

/// Run one load profile against a target and collect the outcome.
///
/// Setup (session `OPEN`s plus one warming `SOLVE` each, so read verbs
/// always have a run to report) happens on one extra connection *before*
/// the start barrier; its requests are recorded in the outcome too, which
/// keeps the client-side verb×outcome grid equal to the server's — the
/// server cannot tell setup from load.
pub fn run(profile: &Profile, target: &Target) -> Result<RunOutcome, ClientError> {
    let text = workload_instance_text_sized(profile.instance_side);
    let mut outcome = RunOutcome::default();

    // Setup connection: open + warm every session.
    let mut setup_out = ThreadOutcome::default();
    let mut setup = target.connect()?;
    for s in 0..profile.sessions {
        let open = Request::Open {
            session: profile.session_for(s),
            kind: OpenKind::Instance,
            payload: text_to_lines(&text),
        };
        if !issue(&mut setup_out, &mut setup, &open, true) {
            return Err(ClientError::Io(std::io::Error::other(
                "setup connection died during OPEN",
            )));
        }
        let solve = Request::Solve {
            session: profile.session_for(s),
            deadline_ms: None,
        };
        if !issue(&mut setup_out, &mut setup, &solve, true) {
            return Err(ClientError::Io(std::io::Error::other(
                "setup connection died during warm SOLVE",
            )));
        }
    }
    let opened = setup_out.verbs.get("open").map_or(0, |v| v.ok);
    if opened != profile.sessions as u64 {
        return Err(ClientError::Io(std::io::Error::other(format!(
            "setup opened {opened}/{} sessions",
            profile.sessions
        ))));
    }
    outcome.merge_thread(setup_out);

    // Connect everything first so the barrier releases a fully-armed fleet.
    let mut clients = Vec::with_capacity(profile.connections);
    for _ in 0..profile.connections {
        clients.push(target.connect()?);
    }

    let barrier = Arc::new(Barrier::new(profile.connections + 1));
    let results: Arc<Mutex<Vec<ThreadOutcome>>> =
        Arc::new(Mutex::new(Vec::with_capacity(profile.connections)));
    let mut handles = Vec::with_capacity(profile.connections);
    for (conn, mut client) in clients.into_iter().enumerate() {
        let profile = profile.clone();
        let barrier = Arc::clone(&barrier);
        let results = Arc::clone(&results);
        let handle = std::thread::Builder::new()
            .name(format!("loadgen-conn-{conn}"))
            .spawn(move || {
                let schedule = schedule_for(&profile, conn);
                let session = profile.session_for(conn);
                let watching = conn < profile.watchers;
                let mut out = ThreadOutcome::default();
                let mut alive = true;
                if watching {
                    alive = issue(
                        &mut out,
                        &mut client,
                        &Request::Watch {
                            session: session.clone(),
                            buffer: profile.watch_buffer,
                        },
                        false,
                    );
                }
                barrier.wait();
                let t0 = Instant::now();
                let mut add_next = true;
                if alive {
                    for planned in &schedule {
                        let due = Duration::from_micros(planned.at_us);
                        let elapsed = t0.elapsed();
                        if due > elapsed {
                            std::thread::sleep(due - elapsed);
                        }
                        let request = request_for(
                            planned.action,
                            &session,
                            conn,
                            &mut add_next,
                            profile.deadline_ms,
                        );
                        if !issue(&mut out, &mut client, &request, true) {
                            alive = false;
                            break;
                        }
                    }
                }
                if watching && alive {
                    // UNWATCH flushes every pending event ahead of its
                    // reply, so take_events() below sees the whole stream.
                    issue(&mut out, &mut client, &Request::Unwatch { session }, false);
                    for frame in client.take_events() {
                        match frame.body {
                            EventBody::Event { .. } => out.events += 1,
                            EventBody::Dropped { count } => out.dropped_marker_sum += count,
                        }
                    }
                }
                results.lock().unwrap().push(out);
            })
            .expect("spawning a loadgen connection thread");
        handles.push(handle);
    }

    barrier.wait();
    let t0 = Instant::now();
    for handle in handles {
        let _ = handle.join();
    }
    outcome.wall = t0.elapsed();
    for t in Arc::try_unwrap(results)
        .map(|m| m.into_inner().unwrap())
        .unwrap_or_default()
    {
        outcome.merge_thread(t);
    }
    Ok(outcome)
}
